package virtio

import (
	"testing"

	"daredevil/internal/block"
	"daredevil/internal/core"
	"daredevil/internal/cpus"
	"daredevil/internal/nvme"
	"daredevil/internal/sim"
	"daredevil/internal/stackbase"
)

func newHost(t *testing.T) (*sim.Engine, *cpus.Pool, block.Stack) {
	t.Helper()
	eng := sim.New()
	pool := cpus.NewPool(eng, 4, cpus.Config{})
	cfg := nvme.DefaultConfig()
	dev := nvme.New(eng, pool, cfg)
	stack := core.New(stackbase.Env{Eng: eng, Pool: pool, Dev: dev}, core.DefaultConfig())
	return eng, pool, stack
}

func guestReq(id uint64, guest *block.Tenant, size int64, op block.OpKind,
	now sim.Time, done func(*block.Request)) *block.Request {
	return &block.Request{ID: id, Tenant: guest, Size: size, Op: op,
		IssueTime: now, NSQ: -1, OnComplete: done}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig(GuestMixed, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultConfig(GuestMixed, 0).Validate(); err == nil {
		t.Fatal("zero VQs must be invalid")
	}
	if err := DefaultConfig(GuestDecoupled, 1).Validate(); err == nil {
		t.Fatal("decoupled mode with 1 VQ must be invalid")
	}
}

func TestModeStrings(t *testing.T) {
	if GuestMixed.String() != "guest-mixed" || GuestDecoupled.String() != "guest-decoupled" {
		t.Fatal("mode strings wrong")
	}
}

func TestDecoupledVQClasses(t *testing.T) {
	eng, pool, stack := newHost(t)
	_ = eng
	vm := New(eng, pool, stack, DefaultConfig(GuestDecoupled, 4))
	if vm.NumVQs() != 4 {
		t.Fatalf("NumVQs = %d", vm.NumVQs())
	}
	for i := 0; i < 2; i++ {
		if vm.VQClass(i) != block.ClassRT {
			t.Fatalf("VQ %d class = %v, want RT (first half is the L group)", i, vm.VQClass(i))
		}
	}
	for i := 2; i < 4; i++ {
		if vm.VQClass(i) != block.ClassBE {
			t.Fatalf("VQ %d class = %v, want BE", i, vm.VQClass(i))
		}
	}
}

func TestMixedVQClassesAreOpaque(t *testing.T) {
	eng, pool, stack := newHost(t)
	vm := New(eng, pool, stack, DefaultConfig(GuestMixed, 4))
	for i := 0; i < 4; i++ {
		if vm.VQClass(i) != block.ClassBE {
			t.Fatalf("VQ %d class = %v; a mixed guest is opaque to the host", i, vm.VQClass(i))
		}
	}
}

func TestGuestRequestCompletes(t *testing.T) {
	eng, pool, stack := newHost(t)
	vm := New(eng, pool, stack, DefaultConfig(GuestDecoupled, 4))
	guest := &block.Tenant{ID: 1, Core: 0, Class: block.ClassRT}
	done := false
	rq := guestReq(1, guest, 4096, block.OpRead, eng.Now(), func(r *block.Request) { done = true })
	vm.Submit(rq)
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	if !done {
		t.Fatal("guest request never completed")
	}
	if rq.Latency() <= 0 || rq.NSQ < 0 {
		t.Fatalf("guest request not annotated: lat=%v nsq=%d", rq.Latency(), rq.NSQ)
	}
	if vm.Forwarded != 1 {
		t.Fatalf("Forwarded = %d", vm.Forwarded)
	}
}

func TestDecoupledRoutesByGuestClass(t *testing.T) {
	eng, pool, stack := newHost(t)
	vm := New(eng, pool, stack, DefaultConfig(GuestDecoupled, 4))
	l := &block.Tenant{ID: 1, Core: 0, Class: block.ClassRT}
	tt := &block.Tenant{ID: 2, Core: 0, Class: block.ClassBE}
	lq := vm.route(l, &block.Request{})
	tq := vm.route(tt, &block.Request{})
	if lq.proxy.Class != block.ClassRT {
		t.Fatal("guest L-request routed to a non-RT VQ")
	}
	if tq.proxy.Class != block.ClassBE {
		t.Fatal("guest T-request routed to a non-BE VQ")
	}
	// Outlier requests from guest T-tenants use the L group (§8.1 keeps
	// the same troute semantics in the guest).
	oq := vm.route(tt, &block.Request{Flags: block.FlagSync})
	if oq.proxy.Class != block.ClassRT {
		t.Fatal("guest outlier not routed to the L VQ group")
	}
	_ = eng
}

func TestMixedRoutesByVCPU(t *testing.T) {
	eng, pool, stack := newHost(t)
	vm := New(eng, pool, stack, DefaultConfig(GuestMixed, 4))
	l := &block.Tenant{ID: 1, Core: 2, Class: block.ClassRT}
	tt := &block.Tenant{ID: 2, Core: 2, Class: block.ClassBE}
	if vm.route(l, &block.Request{}).id != vm.route(tt, &block.Request{}).id {
		t.Fatal("mixed mode must co-locate same-vCPU tenants in one VQ")
	}
	_ = eng
}

func TestVQOrderingFIFO(t *testing.T) {
	eng, pool, stack := newHost(t)
	vm := New(eng, pool, stack, DefaultConfig(GuestDecoupled, 2))
	guest := &block.Tenant{ID: 1, Core: 0, Class: block.ClassRT}
	var order []uint64
	for i := 0; i < 5; i++ {
		id := uint64(i)
		rq := guestReq(id, guest, 4096, block.OpRead, eng.Now(), func(r *block.Request) {
			order = append(order, r.ID)
		})
		rq.Offset = int64(i) * 4096
		vm.Submit(rq)
	}
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	if len(order) != 5 {
		t.Fatalf("completed %d/5", len(order))
	}
}

func TestEndToEndSLAConsistency(t *testing.T) {
	// The §8.1 payoff: with a decoupled guest on a Daredevil host, guest
	// L-requests land in high-group NSQs while guest T-requests land in the
	// low group — separation survives virtualization.
	eng := sim.New()
	pool := cpus.NewPool(eng, 4, cpus.Config{})
	devCfg := nvme.DefaultConfig()
	dev := nvme.New(eng, pool, devCfg)
	stack := core.New(stackbase.Env{Eng: eng, Pool: pool, Dev: dev}, core.DefaultConfig())
	vm := New(eng, pool, stack, DefaultConfig(GuestDecoupled, 4))
	half := dev.NumNCQ() / 2

	l := &block.Tenant{ID: 1, Core: 0, Class: block.ClassRT}
	tt := &block.Tenant{ID: 2, Core: 1, Class: block.ClassBE}
	var wrong int
	for i := 0; i < 10; i++ {
		lrq := guestReq(uint64(i), l, 4096, block.OpRead, eng.Now(), func(r *block.Request) {
			if dev.NSQ(r.NSQ).NCQ().ID >= half {
				wrong++
			}
		})
		vm.Submit(lrq)
		trq := guestReq(uint64(100+i), tt, 131072, block.OpWrite, eng.Now(), func(r *block.Request) {
			if dev.NSQ(r.NSQ).NCQ().ID < half {
				wrong++
			}
		})
		vm.Submit(trq)
	}
	eng.RunUntil(sim.Time(5 * sim.Second))
	if wrong != 0 {
		t.Fatalf("%d guest requests landed in the wrong host NQGroup", wrong)
	}
}

func TestMixedGuestLosesSeparation(t *testing.T) {
	// Counterpart: a mixed guest is opaque, so even a Daredevil host puts
	// everything in the low group — guest L-requests included.
	eng := sim.New()
	pool := cpus.NewPool(eng, 4, cpus.Config{})
	dev := nvme.New(eng, pool, nvme.DefaultConfig())
	stack := core.New(stackbase.Env{Eng: eng, Pool: pool, Dev: dev}, core.DefaultConfig())
	vm := New(eng, pool, stack, DefaultConfig(GuestMixed, 4))
	half := dev.NumNCQ() / 2

	l := &block.Tenant{ID: 1, Core: 0, Class: block.ClassRT}
	highGroup := 0
	rq := guestReq(1, l, 4096, block.OpRead, eng.Now(), func(r *block.Request) {
		if dev.NSQ(r.NSQ).NCQ().ID < half {
			highGroup++
		}
	})
	vm.Submit(rq)
	eng.RunUntil(sim.Time(sim.Second))
	if highGroup != 0 {
		t.Fatal("mixed guest's L-request reached the high group; the host should not see guest SLAs")
	}
}
