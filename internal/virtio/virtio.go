// Package virtio implements the paper's §8.1 future-work sketch: extending
// Daredevil to virtual machines. Applications inside a guest are invisible
// to the host kernel, so the host cannot classify their requests. The
// proposed design gives the guest a decoupled virtio stack — each virtqueue
// (VQ) serves requests of one SLA — and has hypervisor and host maintain
// VQ→NQ mappings whose I/O service is consistent with that SLA.
//
// Two guest modes are modeled:
//
//   - GuestMixed: the standard virtio-blk layout, one VQ per vCPU; L- and
//     T-requests of co-located guest tenants share VQs, and the host sees
//     one opaque stream per VQ.
//   - GuestDecoupled: VQs are split into SLA groups (the §8.1 proposal);
//     the guest routes by ionice class, and each VQ's host-side proxy
//     tenant carries the matching class, so a Daredevil host keeps the
//     separation end-to-end.
package virtio

import (
	"fmt"

	"daredevil/internal/block"
	"daredevil/internal/cpus"
	"daredevil/internal/sim"
)

// GuestMode selects the guest virtio stack layout.
type GuestMode uint8

// Guest modes.
const (
	// GuestMixed is vanilla virtio-blk: per-vCPU VQs, classes intermixed.
	GuestMixed GuestMode = iota
	// GuestDecoupled assigns each VQ one SLA and routes by class (§8.1).
	GuestDecoupled
)

// String names the mode.
func (m GuestMode) String() string {
	if m == GuestMixed {
		return "guest-mixed"
	}
	return "guest-decoupled"
}

// Config describes the VM and its virtio costs.
type Config struct {
	Mode GuestMode
	// VQs is the virtqueue count (per-vCPU in GuestMixed; split evenly
	// between SLAs in GuestDecoupled).
	VQs int
	// HostCore is the first host core running the hypervisor's VQ workers
	// (worker i runs on HostCore+i, wrapped over the pool).
	HostCore int
	// NotifyCost models the guest→host kick (vmexit + doorbell).
	NotifyCost sim.Duration
	// ForwardCost is the hypervisor's per-request handling cost.
	ForwardCost sim.Duration
	// CompleteCost is the host→guest completion injection cost.
	CompleteCost sim.Duration
}

// DefaultConfig returns virtio costs in the common software-virtio range.
func DefaultConfig(mode GuestMode, vqs int) Config {
	return Config{
		Mode: mode, VQs: vqs,
		NotifyCost:   4 * sim.Microsecond,
		ForwardCost:  1500 * sim.Nanosecond,
		CompleteCost: 2 * sim.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.VQs <= 0 {
		return fmt.Errorf("virtio: VQs must be positive")
	}
	if c.Mode == GuestDecoupled && c.VQs < 2 {
		return fmt.Errorf("virtio: GuestDecoupled needs >= 2 VQs to form SLA groups")
	}
	return nil
}

// vq is one virtqueue with its host-side proxy tenant.
type vq struct {
	id      int
	proxy   *block.Tenant
	pending []*block.Request
	busy    bool
}

// VM is a guest whose tenants issue I/O through virtqueues into the host
// storage stack.
type VM struct {
	cfg   Config
	eng   *sim.Engine
	pool  *cpus.Pool
	stack block.Stack
	vqs   []*vq

	// Forwarded counts requests handed to the host stack.
	Forwarded uint64
}

// New builds a VM on the host environment. Each VQ gets a host proxy
// tenant; under GuestDecoupled the first half of the VQs is the
// latency-sensitive group and their proxies carry real-time ionice, making
// the VQ→NQ mapping SLA-consistent on a Daredevil host.
func New(eng *sim.Engine, pool *cpus.Pool, stack block.Stack, cfg Config) *VM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	vm := &VM{cfg: cfg, eng: eng, pool: pool, stack: stack}
	for i := 0; i < cfg.VQs; i++ {
		class := block.ClassBE
		if cfg.Mode == GuestDecoupled && i < cfg.VQs/2 {
			class = block.ClassRT
		}
		proxy := &block.Tenant{
			ID:    9000 + i,
			Name:  fmt.Sprintf("virtio-vq%d", i),
			Class: class,
			Core:  (cfg.HostCore + i) % pool.N(),
		}
		stack.Register(proxy)
		vm.vqs = append(vm.vqs, &vq{id: i, proxy: proxy})
	}
	return vm
}

// NumVQs reports the virtqueue count.
func (vm *VM) NumVQs() int { return len(vm.vqs) }

// VQClass reports the SLA class VQ i serves on the host side.
func (vm *VM) VQClass(i int) block.Class { return vm.vqs[i].proxy.Class }

// route picks the VQ for a guest tenant's request.
func (vm *VM) route(guest *block.Tenant, rq *block.Request) *vq {
	switch vm.cfg.Mode {
	case GuestDecoupled:
		half := len(vm.vqs) / 2
		if block.PrioOf(guest.Class) == block.PrioHigh || rq.Flags.Outlier() {
			return vm.vqs[guest.Core%half]
		}
		return vm.vqs[half+guest.Core%(len(vm.vqs)-half)]
	default:
		return vm.vqs[guest.Core%len(vm.vqs)]
	}
}

// Name identifies the VM front-end; VM implements block.Stack so guest
// workloads drive it like any storage stack.
func (vm *VM) Name() string { return "virtio-" + vm.cfg.Mode.String() }

// Register is a no-op: guest tenants are invisible to the host; only the
// per-VQ proxies (registered at construction) exist host-side.
func (vm *VM) Register(t *block.Tenant) {}

// SetIonice records the guest-side class; routing reacts on the next
// request (GuestDecoupled only).
func (vm *VM) SetIonice(t *block.Tenant, c block.Class) { t.Class = c }

// MigrateTenant moves the guest tenant across vCPUs.
func (vm *VM) MigrateTenant(t *block.Tenant, core int) { t.Core = core }

// Submit sends a guest request through its VQ: the guest kick costs
// NotifyCost on the guest's vCPU; the hypervisor worker forwards entries to
// the host stack in order, one at a time per VQ. The guest tenant is
// rq.Tenant.
func (vm *VM) Submit(rq *block.Request) sim.Duration {
	q := vm.route(rq.Tenant, rq)
	q.pending = append(q.pending, rq)
	vm.kick(q)
	return vm.cfg.NotifyCost
}

func (vm *VM) kick(q *vq) {
	if q.busy || len(q.pending) == 0 {
		return
	}
	q.busy = true
	rq := q.pending[0]
	q.pending = q.pending[1:]
	host := vm.pool.Core(q.proxy.Core)
	host.Submit(cpus.Work{
		Cost:  vm.cfg.ForwardCost,
		Owner: q.proxy.ID,
		Fn: func() sim.Duration {
			overhead := vm.forward(q, rq)
			q.busy = false
			vm.kick(q)
			return overhead
		},
	})
}

// forward rewrites the request under the VQ's proxy tenant and submits it
// to the host stack; completion is injected back to the guest with
// CompleteCost on the VQ's host core.
func (vm *VM) forward(q *vq, rq *block.Request) sim.Duration {
	vm.Forwarded++
	guestDone := rq.OnComplete
	hostReq := &block.Request{
		ID: rq.ID, Tenant: q.proxy, Namespace: rq.Namespace,
		Offset: rq.Offset, Size: rq.Size, Op: rq.Op, Flags: rq.Flags,
		IssueTime: rq.IssueTime, NSQ: -1,
	}
	hostReq.OnComplete = func(hr *block.Request) {
		vm.pool.Core(q.proxy.Core).Submit(cpus.Work{
			Cost:  vm.cfg.CompleteCost,
			Owner: q.proxy.ID,
			Fn: func() sim.Duration {
				rq.SubmitTime = hr.SubmitTime
				rq.FetchTime = hr.FetchTime
				rq.CQEPostTime = hr.CQEPostTime
				rq.LockWait = hr.LockWait
				rq.CrossCore = hr.CrossCore
				rq.NSQ = hr.NSQ
				rq.OnComplete = guestDone
				rq.Complete(vm.eng.Now())
				return 0
			},
		})
	}
	return vm.stack.Submit(hostReq)
}
