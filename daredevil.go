// Package daredevil is the public API of the Daredevil reproduction: a
// deterministic simulation of the Linux NVMe storage stack and of Daredevil
// (EuroSys '25), the storage stack that decouples static core→NQ bindings
// for flexible multi-tenancy control.
//
// The library simulates an entire machine — CPU cores, the NVMe controller
// with its submission/completion queues, a flash backend — and runs one of
// several storage stacks on it:
//
//   - StackVanilla: Linux blk-mq with static per-core queue bindings.
//   - StackBlkSwitch: blk-switch-style cross-core scheduling.
//   - StackStaticPart: FlashShare/D2FQ-style static per-class NQs.
//   - StackDaredevil (and its dare-base / dare-sched ablations): the
//     paper's contribution.
//
// A minimal session:
//
//	sim := daredevil.NewSimulation(daredevil.ServerMachine(4), daredevil.StackDaredevil)
//	sim.AddLTenants(4)
//	sim.AddTTenants(16)
//	res := sim.Run(100*daredevil.Millisecond, 500*daredevil.Millisecond)
//	fmt.Println(res.LTenantLatency.P999, res.TThroughputMBps)
//
// The full evaluation harness behind cmd/ddbench is reachable through the
// Experiment helpers.
package daredevil

import (
	"encoding/json"
	"fmt"
	"io"

	"daredevil/internal/block"
	"daredevil/internal/fault"
	"daredevil/internal/ftl"
	"daredevil/internal/harness"
	"daredevil/internal/prof"
	"daredevil/internal/sim"
	"daredevil/internal/stats"
	"daredevil/internal/workload"
)

// TenantClass is a tenant's ionice scheduling class.
type TenantClass = block.Class

// Tenant classes.
const (
	// ClassLatencySensitive marks L-tenants (real-time ionice).
	ClassLatencySensitive = block.ClassRT
	// ClassThroughputOriented marks T-tenants (best-effort ionice).
	ClassThroughputOriented = block.ClassBE
)

// Duration is virtual time in nanoseconds.
type Duration = sim.Duration

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// StackKind selects a storage-stack implementation.
type StackKind = harness.StackKind

// Available stacks.
const (
	StackVanilla    = harness.Vanilla
	StackBlkSwitch  = harness.BlkSwitch
	StackStaticPart = harness.StaticPart
	StackDareBase   = harness.DareBase
	StackDareSched  = harness.DareSched
	StackDaredevil  = harness.DareFull
)

// Machine describes the simulated testbed.
type Machine = harness.Machine

// ServerMachine returns the paper's SV-M testbed shape (PM1735-class SSD:
// 64 NSQs, 64 NCQs, depth 1024) with the given core count.
func ServerMachine(cores int) Machine { return harness.SVM(cores) }

// WorkstationMachine returns the paper's WS-M testbed shape (980Pro-class
// SSD: 128 NSQs over 24 NCQs, 8 cores).
func WorkstationMachine() Machine { return harness.WSM() }

// FTLConfig configures the optional page-mapped flash translation layer
// (garbage collection, wear leveling, TRIM). Assign one to Machine.FTL to
// run on an aged device; leave it nil for the default effective-latency
// flash model. Both modes are deterministic.
type FTLConfig = ftl.Config

// DefaultFTLConfig returns the paper-scale aged-device shape: a 4GiB
// device (128 dies x 128 blocks x 64 pages), 7% over-provisioning, greedy
// victim selection, preconditioned full and scrambled.
func DefaultFTLConfig() FTLConfig { return ftl.DefaultConfig() }

// FaultSchedule declares deterministic, seeded device faults (chip
// brownouts, controller hiccups, dropped/late CQEs, read-error ramps, grown
// bad blocks). Assign one to Machine.Fault to run under faults with host
// recovery armed; leave it nil for a healthy device.
type FaultSchedule = fault.Schedule

// FaultProfile names a canned fault schedule (see DefaultFaultSchedule).
type FaultProfile = harness.FaultProfile

// Canned fault profiles.
const (
	// FaultBrownout stalls a run of chips for the fault window.
	FaultBrownout = harness.FaultBrownout
	// FaultLossy drops and delays CQEs and pauses command fetch.
	FaultLossy = harness.FaultLossy
	// FaultWearout ramps the read error rate and fails programs.
	FaultWearout = harness.FaultWearout
)

// DefaultFaultSchedule builds the named profile with its fault window
// covering the second quarter of the measurement phase — onset, steady fault
// pressure, and post-window recovery all land inside measurement.
func DefaultFaultSchedule(profile FaultProfile, seed uint64, warmup, measure Duration) FaultSchedule {
	return harness.ExtFaultSchedule(profile, seed, warmup+measure/4, warmup+measure/2)
}

// RecoveryCounters aggregates error-path activity: device media errors, the
// timeout → abort → controller-reset ladder, host-side requeue verdicts, and
// injected fault hits. All zero on a healthy run.
type RecoveryCounters = harness.RecoveryCounters

// LatencySnapshot summarizes a latency distribution.
type LatencySnapshot = stats.Snapshot

// Result aggregates one measurement window: merged L-/T-tenant latency
// distributions, rates, CPU utilization, optional breakdown components and
// FTL activity, and the recovery counters. It aliases the harness cell
// result so library consumers (ddserve, the experiment grids) and this
// facade return the same typed value.
type Result = harness.CellResult

// FTLResult summarizes the translation layer's work during a measurement
// window.
type FTLResult = harness.FTLSummary

// JobConfig customizes a tenant workload (see DefaultLTenantConfig /
// DefaultTTenantConfig for the paper's shapes).
type JobConfig = workload.FIOConfig

// DefaultLTenantConfig is the paper's L-tenant: 4KB random reads, queue
// depth 1, real-time ionice.
func DefaultLTenantConfig(name string, core int) JobConfig {
	return workload.DefaultLTenant(name, core)
}

// DefaultTTenantConfig is the paper's T-tenant: 128KB streaming writes,
// queue depth 32, best-effort ionice.
func DefaultTTenantConfig(name string, core int) JobConfig {
	return workload.DefaultTTenant(name, core)
}

// Simulation is a configured machine + stack + tenant set — a facade over
// the harness cell API (harness.Cell) that adds the application workloads
// (YCSB-driven KV, mailserver).
type Simulation struct {
	cell *harness.Cell
	apps []app
}

// NewSimulation builds a simulated machine running the given stack.
func NewSimulation(m Machine, kind StackKind) *Simulation {
	return &Simulation{cell: harness.NewCell(m, kind)}
}

// StackName reports the active stack implementation's name.
func (s *Simulation) StackName() string { return s.cell.Env.Stack.Name() }

// CreateNamespaces divides the SSD into n namespaces (call before adding
// tenants that target them).
func (s *Simulation) CreateNamespaces(n int) { s.cell.Env.CreateNamespaces(n) }

// AddLTenants adds n paper-shaped L-tenants in namespace 0.
func (s *Simulation) AddLTenants(n int) { s.cell.Mix.AddL(n, 0) }

// AddTTenants adds n paper-shaped T-tenants in namespace 0.
func (s *Simulation) AddTTenants(n int) { s.cell.Mix.AddT(n, 0) }

// AddLTenantsNS / AddTTenantsNS place tenants in a specific namespace.
func (s *Simulation) AddLTenantsNS(n, ns int) { s.cell.Mix.AddL(n, ns) }

// AddTTenantsNS places n T-tenants in namespace ns.
func (s *Simulation) AddTTenantsNS(n, ns int) { s.cell.Mix.AddT(n, ns) }

// AddJob adds a fully custom tenant job.
func (s *Simulation) AddJob(cfg JobConfig) { s.cell.AddJob(cfg) }

// YCSBKind selects a YCSB workload mix (A, B, E, F).
type YCSBKind = workload.YCSBKind

// YCSB workload kinds.
const (
	YCSBA = workload.YCSBA
	YCSBB = workload.YCSBB
	YCSBE = workload.YCSBE
	YCSBF = workload.YCSBF
)

// OpType labels application operations.
type OpType = workload.OpType

// Application operation types.
const (
	OpRead   = workload.OpGet
	OpUpdate = workload.OpUpdate
	OpInsert = workload.OpInsert
	OpScan   = workload.OpScan
	OpRMW    = workload.OpRMW
	OpFsync  = workload.OpFsync
	OpDelete = workload.OpDelete
)

// KVApp is a RocksDB-like store driven by YCSB clients inside a Simulation.
type KVApp struct {
	kv      *workload.KV
	drivers []*workload.YCSB
}

// AddYCSB attaches a KV store (foreground on core, background flush thread
// on the next core) driven by the given number of YCSB clients. The app
// starts when Run is called.
func (s *Simulation) AddYCSB(kind YCSBKind, core, clients int) *KVApp {
	if clients <= 0 {
		panic("daredevil: AddYCSB needs at least one client")
	}
	cfg := workload.DefaultKVConfig("rocksdb", core)
	kv := workload.NewKV(5000+len(s.apps)*10, cfg)
	kv.BGTenant.Core = (core + 1) % s.cell.Env.Pool.N()
	app := &KVApp{kv: kv}
	for i := 0; i < clients; i++ {
		app.drivers = append(app.drivers, workload.NewYCSB(kind, kv, 71+uint64(i)))
	}
	s.apps = append(s.apps, app)
	return app
}

// OpLatency reports the latency distribution of one operation type since
// warmup.
func (a *KVApp) OpLatency(op OpType) LatencySnapshot {
	if h, ok := a.kv.OpLat[op]; ok {
		return h.Snapshot()
	}
	return LatencySnapshot{}
}

// Ops reports completed client operations.
func (a *KVApp) Ops() uint64 {
	var n uint64
	for _, d := range a.drivers {
		n += d.Ops
	}
	return n
}

func (a *KVApp) start(env *harness.Env) {
	a.kv.Start(env.Eng, env.Pool, env.Stack)
	for _, d := range a.drivers {
		d.Start(env.Eng)
	}
}

func (a *KVApp) reset() { a.kv.ResetStats() }

// MailApp is the Filebench-Mailserver workload inside a Simulation.
type MailApp struct {
	mail *workload.Mail
}

// AddMailserver attaches the mailserver workload on the given core.
func (s *Simulation) AddMailserver(core int) *MailApp {
	app := &MailApp{mail: workload.NewMail(6000+len(s.apps)*10, workload.DefaultMailConfig("mailserver", core))}
	s.apps = append(s.apps, app)
	return app
}

// OpLatency reports the latency distribution of one operation type since
// warmup (OpFsync, OpDelete, or workload.OpCache).
func (a *MailApp) OpLatency(op OpType) LatencySnapshot {
	if h, ok := a.mail.OpLat[op]; ok {
		return h.Snapshot()
	}
	return LatencySnapshot{}
}

func (a *MailApp) start(env *harness.Env) {
	a.mail.Start(env.Eng, env.Pool, env.Stack)
}

func (a *MailApp) reset() { a.mail.ResetStats() }

// app is anything startable inside a Simulation.
type app interface {
	start(*harness.Env)
	reset()
}

// auxApp adapts the unexported app interface to harness.AuxApp so apps ride
// inside the cell's run loop.
type auxApp struct{ a app }

func (x auxApp) Start(e *harness.Env) { x.a.start(e) }
func (x auxApp) Reset()               { x.a.reset() }

// SetSeedShift perturbs the random streams of every tenant added
// afterwards, for re-running an otherwise-identical experiment with fresh
// draws. Zero keeps the default streams.
func (s *Simulation) SetSeedShift(shift uint64) { s.cell.Mix.SeedShift = shift }

// EnableTrace collects per-request lifecycle spans for up to limit requests
// (a default budget when limit <= 0) and arms the flight recorder. Call
// before Run; render afterwards with WriteTrace (phase table),
// WriteTraceJSON (Chrome trace-event / Perfetto timeline), or WriteFlight
// (recovery postmortems).
func (s *Simulation) EnableTrace(limit int) { s.cell.EnableTrace(limit) }

// EnableMetrics samples the machine's gauge set (queue depths, per-core
// busy/IRQ share, controller occupancy, FTL health, recovery deltas) every
// window of virtual time. Call before Run; export with WriteMetricsCSV or
// WriteMetricsJSON.
func (s *Simulation) EnableMetrics(window Duration) {
	if window <= 0 {
		panic("daredevil: EnableMetrics needs a positive window")
	}
	s.cell.EnableMetrics(window)
}

// WriteTrace renders collected request timelines as an aligned phase table
// (cpu+route, in-NSQ, device, delivery). No-op unless EnableTrace was
// called.
func (s *Simulation) WriteTrace(w io.Writer) { s.cell.WriteTraceTable(w) }

// WriteTraceJSON emits the collected trace as Chrome trace-event JSON with
// one track per core, NSQ, chip, and GC die plus recovery instants — open
// it at ui.perfetto.dev or chrome://tracing. No-op unless EnableTrace was
// called.
func (s *Simulation) WriteTraceJSON(w io.Writer) error { return s.cell.WriteTraceJSON(w) }

// WriteMetricsCSV emits the sampled gauge series as a CSV matrix (first
// column window start in µs, one column per gauge). No-op unless
// EnableMetrics was called.
func (s *Simulation) WriteMetricsCSV(w io.Writer) error { return s.cell.WriteMetricsCSV(w) }

// WriteMetricsJSON emits the sampled gauge series as JSON. No-op unless
// EnableMetrics was called.
func (s *Simulation) WriteMetricsJSON(w io.Writer) error { return s.cell.WriteMetricsJSON(w) }

// WriteFlight renders the flight-recorder dumps captured when host
// recovery escalated (timeout/abort/reset): one block per escalation, the
// recent event stream of every component merged in deterministic order.
// No-op when tracing was off or nothing escalated.
func (s *Simulation) WriteFlight(w io.Writer) error { return s.cell.WriteFlight(w) }

// FlightDumps reports how many recovery escalations captured a flight dump.
func (s *Simulation) FlightDumps() int { return s.cell.FlightDumps() }

// EnableProfile streams every completed request through the virtual-time
// profiler: per (tenant-class, layer) latency digests over the fixed
// submit / queue-wait / fetch / chip / gc / cqe / delivery taxonomy,
// covering the measurement window. Call before Run; render afterwards
// with WriteProfile, WriteProfileFolded, or WriteProfileSVG, and inspect
// host-side cost with WriteSelfProfile. Unlike EnableTrace there is no
// span budget — the profiler aggregates every request at O(1) memory.
func (s *Simulation) EnableProfile() { s.cell.EnableProfile() }

// Profile snapshots the aggregated layer profile (empty before Run or when
// profiling is off). Profiles from different runs merge deterministically
// via prof.Merge.
func (s *Simulation) Profile() prof.Profile {
	if p := s.cell.Profiler(); p != nil {
		return p.Profile()
	}
	return prof.Profile{}
}

// WriteProfile renders the layer-latency breakdown table (share, mean,
// p50/p99/p99.9, max per layer). No-op unless EnableProfile was called.
func (s *Simulation) WriteProfile(w io.Writer) error { return s.cell.WriteProfileTable(w) }

// WriteProfileFolded emits the profile as folded stacks
// ("stack;class;layer ns"), ready for flamegraph.pl or speedscope. No-op
// unless EnableProfile was called.
func (s *Simulation) WriteProfileFolded(w io.Writer) error { return s.cell.WriteProfileFolded(w) }

// WriteProfileSVG renders the breakdown as a stacked horizontal bar chart.
// No-op unless EnableProfile was called.
func (s *Simulation) WriteProfileSVG(w io.Writer) error { return s.cell.WriteProfileSVG(w) }

// WriteSelfProfile reports where the simulator spent host wall-clock time
// (build/warmup/measure/collect). No-op unless EnableProfile was called.
func (s *Simulation) WriteSelfProfile(w io.Writer) error { return s.cell.WriteSelfProfile(w) }

// EnableBreakdown records per-request path components for L-tenants
// (submission-side lock wait, completion delivery delay, cross-core
// fraction), exposed through the Result. Call before Run.
func (s *Simulation) EnableBreakdown() { s.cell.Breakdown = true }

// Run starts every tenant, warms up, measures, and aggregates. It may be
// called once per Simulation.
func (s *Simulation) Run(warmup, measure Duration) Result {
	if s.cell.Ran() {
		panic("daredevil: Simulation.Run called twice; build a new Simulation")
	}
	s.cell.Aux = s.cell.Aux[:0]
	for _, a := range s.apps {
		s.cell.Aux = append(s.cell.Aux, auxApp{a})
	}
	return s.cell.Run(warmup, measure)
}

// SetParallelism sets how many experiment cells the harness runs
// concurrently (default GOMAXPROCS). Each cell owns its own engine, so
// results are identical at any setting. n < 1 panics; CLIs validate user
// input before calling.
func SetParallelism(n int) { harness.SetParallelism(n) }

// Parallelism reports the current experiment fan-out.
func Parallelism() int { return harness.Parallelism() }

// CompareStacks builds and runs one simulation per stack kind on the
// experiment worker pool and returns the results in kind order. run must
// build a fresh Simulation per call — cells share nothing, which is what
// makes the fan-out deterministic.
func CompareStacks(kinds []StackKind, run func(StackKind) Result) []Result {
	return harness.RunCells(len(kinds), func(i int) Result { return run(kinds[i]) })
}

// Scale controls experiment durations for RunExperiment.
type Scale = harness.Scale

// Predefined scales.
var (
	DefaultScale = harness.DefaultScale
	QuickScale   = harness.QuickScale
)

// ExperimentNames lists the reproducible paper artifacts plus the
// extension experiments (Kyber baseline, WRR arbitration, polled
// completion, §8.1 virtio, aged-device GC, fault injection).
func ExperimentNames() []string {
	return []string{"table1", "fig2", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"ext-sched", "ext-wrr", "ext-poll", "ext-virtio", "ext-webapp",
		"ext-gc", "ext-fault"}
}

// DefaultFaultSeed keys the ext-fault experiment's fault RNG stream.
const DefaultFaultSeed = harness.DefaultFaultSeed

// RunExperimentJSON regenerates one paper table/figure and returns its
// result as JSON — the programmatic counterpart of RunExperiment for
// consumers that post-process results.
func RunExperimentJSON(name string, sc Scale) ([]byte, error) {
	res, err := runExperimentResult(name, sc)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(res, "", "  ")
}

func runExperimentResult(name string, sc Scale) (any, error) {
	switch name {
	case "table1":
		return harness.RunTable1(), nil
	case "fig2":
		return harness.RunFig2(sc), nil
	case "fig6":
		return harness.RunFig6(sc), nil
	case "fig7":
		return harness.RunFig7(sc), nil
	case "fig8":
		return harness.RunFig8(sc), nil
	case "fig9":
		return harness.RunFig9(sc), nil
	case "fig10":
		return harness.RunFig10(sc), nil
	case "fig11":
		return harness.RunFig11(sc), nil
	case "fig12":
		return harness.RunFig12(sc), nil
	case "fig13":
		return harness.RunFig13(sc), nil
	case "fig14":
		return harness.RunFig14(sc), nil
	case "ext-sched":
		return harness.RunExtSchedulers(sc), nil
	case "ext-wrr":
		return harness.RunExtWRR(sc), nil
	case "ext-poll":
		return harness.RunExtPolling(sc), nil
	case "ext-virtio":
		return harness.RunExtVirtio(sc), nil
	case "ext-webapp":
		return harness.RunExtWebapp(sc), nil
	case "ext-gc":
		return harness.RunExtGC(sc), nil
	case "ext-fault":
		return harness.RunExtFault(DefaultFaultSeed, sc), nil
	}
	return nil, fmt.Errorf("daredevil: unknown experiment %q", name)
}

// RunExperiment regenerates one paper table/figure, writing its rows to w.
func RunExperiment(w io.Writer, name string, sc Scale) error {
	switch name {
	case "table1":
		harness.RunTable1().WriteText(w)
	case "fig2":
		harness.RunFig2(sc).WriteText(w)
	case "fig6":
		harness.RunFig6(sc).WriteText(w)
	case "fig7":
		harness.RunFig7(sc).WriteText(w)
	case "fig8":
		harness.RunFig8(sc).WriteText(w)
	case "fig9":
		harness.RunFig9(sc).WriteText(w)
	case "fig10":
		harness.RunFig10(sc).WriteText(w)
	case "fig11":
		harness.RunFig11(sc).WriteText(w)
	case "fig12":
		harness.RunFig12(sc).WriteText(w)
	case "fig13":
		harness.RunFig13(sc).WriteText(w)
	case "fig14":
		harness.RunFig14(sc).WriteText(w)
	case "ext-sched":
		harness.RunExtSchedulers(sc).WriteText(w)
	case "ext-wrr":
		harness.RunExtWRR(sc).WriteText(w)
	case "ext-poll":
		harness.RunExtPolling(sc).WriteText(w)
	case "ext-virtio":
		harness.RunExtVirtio(sc).WriteText(w)
	case "ext-webapp":
		harness.RunExtWebapp(sc).WriteText(w)
	case "ext-gc":
		harness.RunExtGC(sc).WriteText(w)
	case "ext-fault":
		harness.RunExtFault(DefaultFaultSeed, sc).WriteText(w)
	default:
		return fmt.Errorf("daredevil: unknown experiment %q", name)
	}
	return nil
}
