package daredevil

import (
	"daredevil/internal/harness"
	"daredevil/internal/scenario"
)

// Scenario is a declarative multi-tenant experiment, loadable from JSON.
// The format lives in internal/scenario and is shared verbatim by the
// ddsim CLI (-config) and the ddserve capacity-planning daemon, so one
// document runs identically in both. See scenario.Scenario for the field
// reference, including the ddserve extensions (seed, sweep axes).
type Scenario = scenario.Scenario

// ScenarioJob describes one group of identical tenants.
type ScenarioJob = scenario.Job

// ScenarioAxis is one ddserve sweep dimension (param + values).
type ScenarioAxis = scenario.Axis

// ParseScenario decodes and validates a JSON scenario.
func ParseScenario(data []byte) (Scenario, error) { return scenario.Parse(data) }

// BuildScenario constructs the Simulation and the run windows described by
// the scenario. Scenarios carrying sweep axes describe grids, not single
// cells, and are rejected here — submit those to ddserve.
func BuildScenario(sc Scenario) (*Simulation, Duration, Duration, error) {
	spec, err := sc.CellSpec()
	if err != nil {
		return nil, 0, 0, err
	}
	return &Simulation{cell: harness.BuildCell(spec)}, spec.Warmup, spec.Measure, nil
}
