package daredevil

import (
	"encoding/json"
	"fmt"

	"daredevil/internal/workload"
)

// Scenario is a declarative multi-tenant experiment, loadable from JSON
// (ddsim -config). Example:
//
//	{
//	  "machine": "svm", "cores": 4, "stack": "daredevil",
//	  "namespaces": 1, "warmupMs": 100, "measureMs": 400,
//	  "jobs": [
//	    {"name": "db",     "class": "L", "count": 4},
//	    {"name": "backup", "class": "T", "count": 16, "outlierEvery": 8}
//	  ]
//	}
//
// Job fields omit to the paper's defaults for the class (4KB rand qd=1 for
// L, 128KB qd=32 streaming writes for T).
type Scenario struct {
	// Machine is "svm" (default) or "wsm".
	Machine string `json:"machine"`
	// Cores applies to the svm machine (default 4).
	Cores int `json:"cores"`
	// Stack names the storage stack (default "daredevil").
	Stack string `json:"stack"`
	// Namespaces divides the SSD (default 1).
	Namespaces int `json:"namespaces"`
	// WarmupMs and MeasureMs set the windows in virtual milliseconds
	// (defaults 100/400).
	WarmupMs  int `json:"warmupMs"`
	MeasureMs int `json:"measureMs"`

	// FTL runs the scenario on an aged device with the page-mapped
	// translation layer (garbage collection, wear leveling, TRIM) between
	// the controller and the media. The remaining FTL fields only apply
	// when it is true.
	FTL bool `json:"ftl"`
	// OPPct overrides the device's over-provisioning percentage
	// (default 7).
	OPPct float64 `json:"opPct"`
	// PreconditionPct / ScramblePct override how much of the logical space
	// preconditioning fills and then overwrites (defaults 100/30). Nil
	// keeps the default; explicit 0 disables that phase.
	PreconditionPct *int `json:"preconditionPct"`
	ScramblePct     *int `json:"scramblePct"`

	// Fault names a canned fault profile ("brownout", "lossy", "wearout")
	// to run the scenario under: the fault window covers the second
	// quarter of the measurement phase and host recovery (command expiry →
	// Abort → controller reset, stack requeue) is armed. Empty runs a
	// healthy device. The remaining fault fields only apply when it is
	// set.
	Fault string `json:"fault"`
	// FaultSeed keys the dedicated fault RNG stream (default 42).
	FaultSeed uint64 `json:"faultSeed"`
	// CmdTimeoutUs overrides the host's per-command expiry in
	// microseconds (default: a quarter of the measurement phase).
	CmdTimeoutUs int64 `json:"cmdTimeoutUs"`

	// Trace captures per-request lifecycle spans (and arms the flight
	// recorder). ddsim writes the Chrome trace-event JSON next to the
	// scenario file unless its -trace flag names another path.
	Trace bool `json:"trace"`
	// TraceLimit caps the captured spans (0 = default budget). Requires
	// "trace": true.
	TraceLimit int `json:"traceLimit"`
	// ObsWindowUs samples the machine's gauge set every this many virtual
	// microseconds; ddsim prints the CSV after the summary.
	ObsWindowUs int64 `json:"obsWindowUs"`

	Jobs []ScenarioJob `json:"jobs"`
}

// ScenarioJob describes one group of identical tenants.
type ScenarioJob struct {
	Name  string `json:"name"`
	Class string `json:"class"` // "L" or "T"
	Count int    `json:"count"`

	// Optional overrides (zero = class default).
	BS           int64  `json:"bs"`
	IODepth      int    `json:"iodepth"`
	ReadPct      *int   `json:"readPct"`
	Pattern      string `json:"pattern"` // "random" or "sequential"
	Core         *int   `json:"core"`
	Namespace    int    `json:"namespace"`
	OutlierEvery int    `json:"outlierEvery"`
	// ArrivalUs switches the job to an open loop with this mean
	// inter-arrival time in microseconds.
	ArrivalUs int64 `json:"arrivalUs"`
	SpanMB    int64 `json:"spanMB"`
	// TrimEvery replaces every Nth request with an NVMe Deallocate (TRIM)
	// sweeping the job's span. Only meaningful on an FTL-backed device.
	TrimEvery int `json:"trimEvery"`
}

// ParseScenario decodes and validates a JSON scenario.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return sc, fmt.Errorf("daredevil: invalid scenario JSON: %w", err)
	}
	if err := sc.validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

func (sc Scenario) validate() error {
	switch sc.Machine {
	case "", "svm", "wsm":
	default:
		return fmt.Errorf("daredevil: unknown machine %q (want svm or wsm)", sc.Machine)
	}
	if sc.Cores < 0 || sc.Namespaces < 0 || sc.WarmupMs < 0 || sc.MeasureMs < 0 {
		return fmt.Errorf("daredevil: negative scenario parameter")
	}
	if sc.Stack != "" {
		if _, err := stackKindOf(sc.Stack); err != nil {
			return err
		}
	}
	if !sc.FTL && (sc.OPPct != 0 || sc.PreconditionPct != nil || sc.ScramblePct != nil) {
		return fmt.Errorf("daredevil: opPct/preconditionPct/scramblePct require \"ftl\": true")
	}
	if sc.FTL {
		if err := sc.ftlConfig().Validate(); err != nil {
			return fmt.Errorf("daredevil: invalid FTL scenario: %w", err)
		}
	}
	switch sc.Fault {
	case "", string(FaultBrownout), string(FaultLossy), string(FaultWearout):
	default:
		return fmt.Errorf("daredevil: unknown fault profile %q (want brownout, lossy, or wearout)", sc.Fault)
	}
	if sc.Fault == "" && (sc.FaultSeed != 0 || sc.CmdTimeoutUs != 0) {
		return fmt.Errorf("daredevil: faultSeed/cmdTimeoutUs require \"fault\"")
	}
	if sc.CmdTimeoutUs < 0 {
		return fmt.Errorf("daredevil: negative cmdTimeoutUs")
	}
	if !sc.Trace && sc.TraceLimit != 0 {
		return fmt.Errorf("daredevil: traceLimit requires \"trace\": true")
	}
	if sc.TraceLimit < 0 || sc.ObsWindowUs < 0 {
		return fmt.Errorf("daredevil: negative traceLimit/obsWindowUs")
	}
	if len(sc.Jobs) == 0 {
		return fmt.Errorf("daredevil: scenario has no jobs")
	}
	for i, j := range sc.Jobs {
		switch j.Class {
		case "L", "T":
		default:
			return fmt.Errorf("daredevil: job %d (%q): class must be \"L\" or \"T\"", i, j.Name)
		}
		if j.Count <= 0 {
			return fmt.Errorf("daredevil: job %d (%q): count must be positive", i, j.Name)
		}
		switch j.Pattern {
		case "", "random", "sequential":
		default:
			return fmt.Errorf("daredevil: job %d (%q): unknown pattern %q", i, j.Name, j.Pattern)
		}
		if j.BS < 0 || j.IODepth < 0 || j.OutlierEvery < 0 || j.ArrivalUs < 0 || j.SpanMB < 0 || j.TrimEvery < 0 {
			return fmt.Errorf("daredevil: job %d (%q): negative parameter", i, j.Name)
		}
		ns := max(sc.Namespaces, 1)
		if j.Namespace < 0 || j.Namespace >= ns {
			return fmt.Errorf("daredevil: job %d (%q): namespace %d out of [0,%d)", i, j.Name, j.Namespace, ns)
		}
	}
	return nil
}

func stackKindOf(name string) (StackKind, error) {
	for _, k := range []StackKind{
		StackVanilla, StackBlkSwitch, StackStaticPart,
		StackDareBase, StackDareSched, StackDaredevil,
	} {
		if string(k) == name {
			return k, nil
		}
	}
	return "", fmt.Errorf("daredevil: unknown stack %q", name)
}

// Build constructs the Simulation and the run windows described by the
// scenario.
func (sc Scenario) Build() (*Simulation, Duration, Duration, error) {
	if err := sc.validate(); err != nil {
		return nil, 0, 0, err
	}
	var m Machine
	if sc.Machine == "wsm" {
		m = WorkstationMachine()
	} else {
		cores := sc.Cores
		if cores == 0 {
			cores = 4
		}
		m = ServerMachine(cores)
	}
	kind := StackDaredevil
	if sc.Stack != "" {
		kind, _ = stackKindOf(sc.Stack)
	}
	if sc.FTL {
		fcfg := sc.ftlConfig()
		m.FTL = &fcfg
	}
	warm := Duration(sc.WarmupMs) * Millisecond
	if warm == 0 {
		warm = 100 * Millisecond
	}
	measure := Duration(sc.MeasureMs) * Millisecond
	if measure == 0 {
		measure = 400 * Millisecond
	}
	if sc.Fault != "" {
		seed := sc.FaultSeed
		if seed == 0 {
			seed = DefaultFaultSeed
		}
		fs := DefaultFaultSchedule(FaultProfile(sc.Fault), seed, warm, measure)
		m.Fault = &fs
		if sc.CmdTimeoutUs > 0 {
			m.NVMe.CmdTimeout = Duration(sc.CmdTimeoutUs) * Microsecond
		} else {
			// Keep expiry well above the device's legitimate tail under
			// load; a too-short timeout cascades into false-abort reset
			// storms.
			m.NVMe.CmdTimeout = measure / 4
		}
	}
	sim := NewSimulation(m, kind)
	if sc.Trace {
		sim.EnableTrace(sc.TraceLimit)
	}
	if sc.ObsWindowUs > 0 {
		sim.EnableMetrics(Duration(sc.ObsWindowUs) * Microsecond)
	}
	if sc.Namespaces > 1 {
		sim.CreateNamespaces(sc.Namespaces)
	}
	tenantIdx := 0
	for _, j := range sc.Jobs {
		for i := 0; i < j.Count; i++ {
			core := tenantIdx % m.Cores
			if j.Core != nil {
				core = *j.Core % m.Cores
			}
			var cfg JobConfig
			if j.Class == "L" {
				cfg = workload.DefaultLTenant(j.Name, core)
			} else {
				cfg = workload.DefaultTTenant(j.Name, core)
			}
			if j.BS > 0 {
				cfg.BS = j.BS
			}
			if j.IODepth > 0 {
				cfg.IODepth = j.IODepth
			}
			if j.ReadPct != nil {
				cfg.ReadPct = *j.ReadPct
			}
			switch j.Pattern {
			case "random":
				cfg.Pattern = workload.Random
			case "sequential":
				cfg.Pattern = workload.Sequential
			}
			cfg.Namespace = j.Namespace
			cfg.OutlierEvery = j.OutlierEvery
			if j.ArrivalUs > 0 {
				cfg.Arrival = Duration(j.ArrivalUs) * Microsecond
			}
			if j.SpanMB > 0 {
				cfg.Span = j.SpanMB << 20
			}
			cfg.TrimEvery = j.TrimEvery
			cfg.Seed += uint64(tenantIdx) * 9176
			sim.AddJob(cfg)
			tenantIdx++
		}
	}
	return sim, warm, measure, nil
}

// ftlConfig materializes the scenario's FTL fields over the defaults.
func (sc Scenario) ftlConfig() FTLConfig {
	cfg := DefaultFTLConfig()
	if sc.OPPct != 0 {
		cfg.OPPct = sc.OPPct
	}
	if sc.PreconditionPct != nil {
		cfg.PreconditionPct = *sc.PreconditionPct
	}
	if sc.ScramblePct != nil {
		cfg.ScramblePct = *sc.ScramblePct
	}
	return cfg
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
