module daredevil

go 1.22
