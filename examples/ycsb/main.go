// YCSB: a RocksDB-like store serving YCSB-A (50% reads / 50% updates) while
// eight streaming T-tenants hammer the same SSD — the paper's §7.4
// real-world scenario. Only operations that actually reach the storage
// stack (updates via the WAL, cache-missing reads) benefit from Daredevil.
//
//	go run ./examples/ycsb
package main

import (
	"fmt"

	"daredevil"
)

func main() {
	fmt.Println("YCSB-A on a RocksDB-like store + 8 background streaming T-tenants")
	fmt.Println()
	for _, kind := range []daredevil.StackKind{
		daredevil.StackVanilla, daredevil.StackBlkSwitch, daredevil.StackDaredevil,
	} {
		sim := daredevil.NewSimulation(daredevil.ServerMachine(4), kind)
		sim.AddTTenants(8)
		app := sim.AddYCSB(daredevil.YCSBA, 0, 4)
		sim.Run(100*daredevil.Millisecond, 500*daredevil.Millisecond)

		up := app.OpLatency(daredevil.OpUpdate)
		rd := app.OpLatency(daredevil.OpRead)
		fmt.Printf("%-10s  %6d ops | update p99.9 %-10v | read p99.9 %-10v\n",
			sim.StackName(), app.Ops(), up.P999, rd.P999)
	}
	fmt.Println()
	fmt.Println("Updates hit the write-ahead log synchronously, so their tail tracks")
	fmt.Println("the storage stack; cached reads barely move. Daredevil routes the")
	fmt.Println("sync WAL writes (outlier L-requests) to high-priority NQs.")
}
