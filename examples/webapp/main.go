// Webapp: the paper's introductory scenario. A cloud server hosts an
// interactive web application (open-loop 4KB reads — users don't wait for
// other users) next to a deep-learning trainer that periodically
// checkpoints model state (bursts of bulk writes). On vanilla blk-mq every
// checkpoint burst spikes the web app's tail latency; Daredevil keeps the
// page loads flat while the checkpoints still complete.
//
//	go run ./examples/webapp
package main

import (
	"fmt"

	"daredevil/internal/harness"
	"daredevil/internal/sim"
	"daredevil/internal/workload"
)

func run(kind harness.StackKind) (web *workload.Job, ck *workload.Checkpointer) {
	env := harness.NewEnv(harness.SVM(4), kind)

	// Interactive web app: 5k page loads per second across the server.
	webCfg := workload.DefaultLTenant("webapp", 0)
	webCfg.Arrival = 200 * sim.Microsecond
	web = workload.NewJob(1, webCfg)
	web.Start(env.Eng, env.Pool, env.Stack)

	// DL trainer co-located on the web app's core (the normal case: the
	// orchestrator packs tenants): 256 MiB checkpoint every 500 ms, written
	// as aggressively as the runtime can (QD 256 — deep async writeback).
	ckCfg := workload.DefaultCheckpointConfig("trainer", 0)
	ckCfg.Size = 256 << 20
	ckCfg.QD = 256
	ck = workload.NewCheckpointer(2, ckCfg)
	ck.Start(env.Eng, env.Pool, env.Stack)

	warm, measure := 200*sim.Millisecond, 2*sim.Second
	env.Eng.RunUntil(sim.Time(warm))
	web.ResetStats()
	ck.ResetStats()
	env.Eng.RunUntil(sim.Time(warm + measure))
	return web, ck
}

func main() {
	fmt.Println("Interactive web app (5k req/s, open loop) + DL trainer")
	fmt.Println("(256 MiB checkpoint every 500 ms) sharing one SSD:")
	fmt.Println()
	for _, kind := range []harness.StackKind{harness.Vanilla, harness.DareFull} {
		web, ck := run(kind)
		w := web.Lat.Snapshot()
		c := ck.Durations.Snapshot()
		fmt.Printf("%-10s  page load avg %-10v p99 %-10v p99.9 %-10v | checkpoint avg %v (%d done)\n",
			kind, w.Mean, w.P99, w.P999, c.Mean, ck.Completed)
	}
	fmt.Println()
	fmt.Println("The checkpoints' head-of-line write bursts are what inflate the page")
	fmt.Println("loads under vanilla; Daredevil routes them to low-priority NQs so the")
	fmt.Println("web app's reads never queue behind them.")
}
