// Virtio: the paper's §8.1 future-work design, end to end. Guest tenants
// are invisible to the host kernel, so a Daredevil host alone cannot
// separate a VM's L- and T-requests — they arrive mixed through shared
// virtqueues. Giving the guest per-SLA virtqueues whose host-side proxies
// carry matching ionice classes restores NQ-level separation through the
// whole virtualization stack.
//
// This example uses the internal virtio package directly (it is an
// extension, not part of the stable facade).
//
//	go run ./examples/virtio
package main

import (
	"fmt"

	"daredevil/internal/harness"
	"daredevil/internal/sim"
	"daredevil/internal/stats"
	"daredevil/internal/virtio"
	"daredevil/internal/workload"
)

func run(mode virtio.GuestMode, host harness.StackKind) (tail, avg sim.Duration) {
	env := harness.NewEnv(harness.SVM(4), host)
	vm := virtio.New(env.Eng, env.Pool, env.Stack, virtio.DefaultConfig(mode, 4))

	var lJobs []*workload.Job
	for i := 0; i < 2; i++ {
		j := workload.NewJob(100+i, workload.DefaultLTenant("guest-L", i%4))
		lJobs = append(lJobs, j)
		j.Start(env.Eng, env.Pool, vm)
	}
	for i := 0; i < 8; i++ {
		j := workload.NewJob(200+i, workload.DefaultTTenant("guest-T", i%4))
		j.Start(env.Eng, env.Pool, vm)
	}
	warm, measure := 100*sim.Millisecond, 400*sim.Millisecond
	env.Eng.RunUntil(sim.Time(warm))
	for _, j := range lJobs {
		j.ResetStats()
	}
	env.Eng.RunUntil(sim.Time(warm + measure))
	var lat stats.Histogram
	for _, j := range lJobs {
		lat.Merge(&j.Lat)
	}
	return lat.Quantile(0.999), lat.Mean()
}

func main() {
	fmt.Println("Guest VM with 2 L-tenants + 8 T-tenants, three virtio designs:")
	fmt.Println()
	combos := []struct {
		mode virtio.GuestMode
		host harness.StackKind
	}{
		{virtio.GuestMixed, harness.Vanilla},
		{virtio.GuestMixed, harness.DareFull},
		{virtio.GuestDecoupled, harness.DareFull},
	}
	for _, c := range combos {
		tail, avg := run(c.mode, c.host)
		fmt.Printf("%-16s on %-10s  guest L avg %-10v p99.9 %v\n",
			c.mode, c.host, avg, tail)
	}
	fmt.Println()
	fmt.Println("A Daredevil host cannot help a mixed guest (middle row): guest SLAs")
	fmt.Println("never reach it. Only per-SLA guest VQs with SLA-consistent VQ→NQ")
	fmt.Println("mappings (bottom row) carry the separation end-to-end — §8.1's point.")
}
