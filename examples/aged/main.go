// Aged: the device side of the paper's §8.1 interference story. The same
// workload — 4 latency-critical L-tenants next to 4 overwrite-heavy
// T-tenants — runs twice per stack: once on a fresh device (the default
// effective-latency flash model) and once on an aged one, where the
// internal/ftl translation layer is collecting garbage underneath. GC
// relocation reads/programs and block erases enter the same per-die FIFOs
// as foreground I/O, so aging inflates the L-tail on *every* stack — the
// device-internal interference no amount of queue separation removes — yet
// Daredevil's ordering over vanilla survives.
//
//	go run ./examples/aged
package main

import (
	"fmt"

	"daredevil/internal/ftl"
	"daredevil/internal/harness"
	"daredevil/internal/sim"
	"daredevil/internal/workload"
)

type row struct {
	lAvg, lP999 sim.Duration
	tMBps       float64
	wa          float64
	gcRuns      uint64
}

func run(kind harness.StackKind, aged bool) row {
	m := harness.SVM(4)
	if aged {
		fcfg := ftl.DefaultConfig()
		fcfg.OPPct = 7 // consumer-drive over-provisioning: GC works hardest
		m.FTL = &fcfg
	}
	env := harness.NewEnv(m, kind)
	mix := harness.NewMix(env)
	mix.AddL(4, 0)
	for i := 0; i < 4; i++ {
		cfg := workload.DefaultTTenant("fio-T", i%env.Pool.N())
		cfg.Pattern = workload.Random // random overwrites are the canonical GC workload
		cfg.ReadPct = 0
		cfg.IODepth = 4
		mix.TJobs = append(mix.TJobs, workload.NewJob(100+i, cfg))
	}
	mix.StartAll()
	warm, measure := 150*sim.Millisecond, 600*sim.Millisecond
	env.Eng.RunUntil(sim.Time(warm))
	mix.ResetStats()
	if env.FTL != nil {
		env.FTL.ResetStats()
	}
	env.Eng.RunUntil(sim.Time(warm + measure))
	r := mix.Collect(measure)
	out := row{lAvg: r.L.Mean, lP999: r.L.P999, tMBps: r.TMBps, wa: 1}
	if env.FTL != nil {
		st := env.FTL.Stats()
		out.wa = st.WriteAmplification()
		out.gcRuns = st.GCRuns
	}
	return out
}

func main() {
	fmt.Println("Fresh vs aged device, 4 L-tenants + 4 overwrite T-tenants (7% OP when aged):")
	fmt.Println()
	fmt.Printf("%-10s %-6s %14s %14s %10s %6s %8s\n",
		"stack", "device", "L avg", "L p99.9", "T MB/s", "WA", "GC runs")
	for _, kind := range []harness.StackKind{harness.Vanilla, harness.DareFull} {
		fresh := run(kind, false)
		aged := run(kind, true)
		fmt.Printf("%-10s %-6s %14v %14v %10.1f %6.2f %8d\n",
			kind, "fresh", fresh.lAvg, fresh.lP999, fresh.tMBps, fresh.wa, fresh.gcRuns)
		fmt.Printf("%-10s %-6s %14v %14v %10.1f %6.2f %8d\n",
			kind, "aged", aged.lAvg, aged.lP999, aged.tMBps, aged.wa, aged.gcRuns)
	}
	fmt.Println()
	fmt.Println("Aging inflates the L-tail on both stacks: GC's relocations and erases")
	fmt.Println("share the die FIFOs with foreground I/O, and write amplification eats")
	fmt.Println("T bandwidth. But the stack ordering survives — Daredevil still holds")
	fmt.Println("the L-tenants below vanilla on the same aged device (try `ddbench")
	fmt.Println("ext-gc` for the full over-provisioning x TRIM sweep).")
}
