// Outliers: troute's runtime I/O profiling (§5.2). A throughput-oriented
// tenant that periodically calls fsync issues synchronous "outlier"
// L-requests among its bulk writes. Daredevil routes those outliers to
// high-priority NQs — and once they become frequent, tags the tenant and
// gives it a dedicated outlier NSQ — so the fsyncs aren't stuck behind the
// tenant's own (and everyone else's) bulk data.
//
//	go run ./examples/outliers
package main

import (
	"fmt"

	"daredevil/internal/harness"
	"daredevil/internal/sim"
	"daredevil/internal/workload"
)

func main() {
	fmt.Println("A T-tenant issuing periodic fsyncs (outlier L-requests) among bulk")
	fmt.Println("writes, next to 15 plain T-tenants:")
	fmt.Println()
	for _, kind := range []harness.StackKind{harness.Vanilla, harness.DareFull} {
		env := harness.NewEnv(harness.SVM(4), kind)

		// The fsync-ing tenant: every 8th request is REQ_SYNC.
		cfg := workload.DefaultTTenant("fsyncer", 0)
		cfg.OutlierEvery = 8
		fsyncer := workload.NewJob(1, cfg)
		fsyncer.Start(env.Eng, env.Pool, env.Stack)

		var bulk []*workload.Job
		for i := 0; i < 15; i++ {
			j := workload.NewJob(10+i, workload.DefaultTTenant("bulk", (i+1)%4))
			bulk = append(bulk, j)
			j.Start(env.Eng, env.Pool, env.Stack)
		}

		warm, measure := 100*sim.Millisecond, 500*sim.Millisecond
		env.Eng.RunUntil(sim.Time(warm))
		fsyncer.ResetStats()
		env.Eng.RunUntil(sim.Time(warm + measure))

		sync := fsyncer.SyncLat.Snapshot()
		all := fsyncer.Lat.Snapshot()
		fmt.Printf("%-10s  fsync (sync) avg %-10v p99 %-10v | bulk writes avg %v\n",
			env.Stack.Name(), sync.Mean, sync.P99, all.Mean)
	}
	fmt.Println()
	fmt.Println("Under vanilla, the fsyncs queue behind 16 tenants' bulk writes in the")
	fmt.Println("same NQ. Daredevil profiles the tenant, tags its outlier tendency, and")
	fmt.Println("routes each REQ_SYNC request to a high-priority NSQ (Algorithm 1) —")
	fmt.Println("cutting the sync latency without reclassifying the whole tenant.")
}
