// Multinamespace: the Figure 3c pitfall. Even when every namespace hosts
// only one tenant class, namespaces share the SSD's NVMe queues — so
// per-namespace stacks still intertwine L- and T-requests inside NQs.
// Daredevil's device-wide nproxy view separates them regardless.
//
//	go run ./examples/multinamespace
package main

import (
	"fmt"

	"daredevil"
)

func main() {
	const namespaces = 4 // 1 L-namespace + 3 T-namespaces (the paper's 1:3)
	fmt.Printf("%d namespaces, each dedicated to one tenant class (L:T = 1:3)\n\n", namespaces)

	for _, kind := range []daredevil.StackKind{daredevil.StackVanilla, daredevil.StackDaredevil} {
		sim := daredevil.NewSimulation(daredevil.ServerMachine(4), kind)
		sim.CreateNamespaces(namespaces)
		sim.AddLTenantsNS(2, 0) // L-namespace hosts 2 L-tenants
		for ns := 1; ns < namespaces; ns++ {
			sim.AddTTenantsNS(8, ns) // each T-namespace hosts 8 T-tenants
		}
		res := sim.Run(100*daredevil.Millisecond, 500*daredevil.Millisecond)
		fmt.Printf("%-10s  L avg %-10v  L p99.9 %-10v  T %7.0f MB/s\n",
			sim.StackName(), res.LTenantLatency.Mean, res.LTenantLatency.P999,
			res.TThroughputMBps)
	}
	fmt.Println()
	fmt.Println("Namespace isolation is an illusion at the queue level: requests from")
	fmt.Println("dedicated L- and T-namespaces still share NQs under vanilla blk-mq.")
}
