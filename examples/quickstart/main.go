// Quickstart: simulate the multi-tenancy issue and Daredevil's fix.
//
// Four latency-sensitive tenants (4KB random reads, queue depth 1) share an
// NVMe SSD with sixteen throughput-oriented tenants (128KB streaming
// writes, queue depth 32) on four cores — first on the vanilla Linux
// storage stack, then on Daredevil.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"daredevil"
)

func main() {
	fmt.Println("Daredevil quickstart: 4 L-tenants vs 16 T-tenants on one SSD")
	fmt.Println()
	for _, kind := range []daredevil.StackKind{daredevil.StackVanilla, daredevil.StackDaredevil} {
		sim := daredevil.NewSimulation(daredevil.ServerMachine(4), kind)
		sim.AddLTenants(4)
		sim.AddTTenants(16)
		res := sim.Run(100*daredevil.Millisecond, 400*daredevil.Millisecond)
		fmt.Printf("%-10s  L avg %-10v L p99.9 %-10v  T %7.0f MB/s\n",
			sim.StackName(), res.LTenantLatency.Mean, res.LTenantLatency.P999,
			res.TThroughputMBps)
	}
	fmt.Println()
	fmt.Println("Daredevil separates L- and T-requests at the NVMe-queue level,")
	fmt.Println("so head-of-line T-requests no longer block latency-sensitive I/O.")
}
