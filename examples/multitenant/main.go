// Multitenant: sweep T-tenant pressure across every storage stack — a
// miniature of the paper's Figure 6. Watch vanilla and blk-switch inflate
// L-tenant latency as T-pressure rises while Daredevil stays flat.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"

	"daredevil"
)

func main() {
	stacks := []daredevil.StackKind{
		daredevil.StackVanilla,
		daredevil.StackBlkSwitch,
		daredevil.StackStaticPart,
		daredevil.StackDaredevil,
	}
	counts := []int{2, 8, 32}

	fmt.Println("L-tenant average latency under rising T-pressure (4 cores, SV-M SSD)")
	fmt.Println()
	fmt.Printf("%-12s", "stack")
	for _, n := range counts {
		fmt.Printf("  %4d T-tenants", n)
	}
	fmt.Println()
	for _, kind := range stacks {
		fmt.Printf("%-12s", kind)
		for _, n := range counts {
			sim := daredevil.NewSimulation(daredevil.ServerMachine(4), kind)
			sim.AddLTenants(4)
			sim.AddTTenants(n)
			res := sim.Run(80*daredevil.Millisecond, 300*daredevil.Millisecond)
			fmt.Printf("  %14v", res.LTenantLatency.Mean)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("blk-switch helps while cross-core scheduling has room (few T-tenants)")
	fmt.Println("and collapses once every NQ must carry T-requests; Daredevil's")
	fmt.Println("NQ-level separation keeps L-latency flat at any pressure.")
}
