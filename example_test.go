package daredevil_test

import (
	"fmt"

	"daredevil"
)

// The basic session: build a machine, add the paper's tenant shapes, run,
// and read the aggregate metrics.
func ExampleNewSimulation() {
	sim := daredevil.NewSimulation(daredevil.ServerMachine(4), daredevil.StackDaredevil)
	sim.AddLTenants(4)
	sim.AddTTenants(16)
	res := sim.Run(50*daredevil.Millisecond, 200*daredevil.Millisecond)
	fmt.Println("L completions recorded:", res.LTenantLatency.Count > 0)
	fmt.Println("T throughput positive:", res.TThroughputMBps > 0)
	// Output:
	// L completions recorded: true
	// T throughput positive: true
}

// Comparing stacks only needs two runs; the simulation is deterministic, so
// the difference is attributable to the stack alone.
func ExampleSimulation_Run() {
	run := func(kind daredevil.StackKind) daredevil.Result {
		sim := daredevil.NewSimulation(daredevil.ServerMachine(4), kind)
		sim.AddLTenants(4)
		sim.AddTTenants(16)
		return sim.Run(50*daredevil.Millisecond, 200*daredevil.Millisecond)
	}
	vanilla := run(daredevil.StackVanilla)
	dd := run(daredevil.StackDaredevil)
	fmt.Println("daredevil wins:", dd.LTenantLatency.Mean < vanilla.LTenantLatency.Mean)
	// Output:
	// daredevil wins: true
}

// Namespaces are created before tenants are placed into them.
func ExampleSimulation_CreateNamespaces() {
	sim := daredevil.NewSimulation(daredevil.ServerMachine(4), daredevil.StackDaredevil)
	sim.CreateNamespaces(4)
	sim.AddLTenantsNS(2, 0) // L-namespace
	sim.AddTTenantsNS(8, 1) // T-namespaces
	sim.AddTTenantsNS(8, 2)
	sim.AddTTenantsNS(8, 3)
	res := sim.Run(50*daredevil.Millisecond, 150*daredevil.Millisecond)
	fmt.Println("separated despite shared NQs:", res.LTenantLatency.Mean < res.TTenantLatency.Mean)
	// Output:
	// separated despite shared NQs: true
}

// Custom jobs mix freely with the paper-shaped defaults.
func ExampleSimulation_AddJob() {
	sim := daredevil.NewSimulation(daredevil.ServerMachine(2), daredevil.StackDaredevil)
	cfg := daredevil.DefaultTTenantConfig("fsyncer", 0)
	cfg.OutlierEvery = 8 // every 8th request is REQ_SYNC — an outlier L-request
	sim.AddJob(cfg)
	res := sim.Run(20*daredevil.Millisecond, 60*daredevil.Millisecond)
	fmt.Println("ran:", res.TTenantLatency.Count > 0)
	// Output:
	// ran: true
}
