package daredevil

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const goodScenario = `{
  "machine": "svm", "cores": 4, "stack": "daredevil",
  "warmupMs": 20, "measureMs": 60,
  "jobs": [
    {"name": "db",     "class": "L", "count": 2},
    {"name": "backup", "class": "T", "count": 4, "outlierEvery": 8}
  ]
}`

func TestParseScenarioGood(t *testing.T) {
	sc, err := ParseScenario([]byte(goodScenario))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Jobs) != 2 || sc.Jobs[1].OutlierEvery != 8 {
		t.Fatalf("parsed %+v", sc)
	}
}

func TestScenarioBuildAndRun(t *testing.T) {
	sc, err := ParseScenario([]byte(goodScenario))
	if err != nil {
		t.Fatal(err)
	}
	sim, warm, measure, err := BuildScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if warm != 20*Millisecond || measure != 60*Millisecond {
		t.Fatalf("windows %v/%v", warm, measure)
	}
	res := sim.Run(warm, measure)
	if res.LTenantLatency.Count == 0 || res.TTenantLatency.Count == 0 {
		t.Fatal("scenario produced no completions")
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario([]byte(`{"jobs":[{"name":"x","class":"L","count":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	sim, warm, measure, err := BuildScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sim.StackName() != "dare-full" {
		t.Fatalf("default stack = %q", sim.StackName())
	}
	if warm != 100*Millisecond || measure != 400*Millisecond {
		t.Fatalf("default windows %v/%v", warm, measure)
	}
}

func TestScenarioOpenLoopAndOverrides(t *testing.T) {
	src := `{
	  "stack": "vanilla", "measureMs": 50, "warmupMs": 10,
	  "jobs": [
	    {"name": "web", "class": "L", "count": 1, "arrivalUs": 100, "bs": 8192,
	     "pattern": "sequential", "readPct": 50, "spanMB": 16, "core": 2}
	  ]
	}`
	sc, err := ParseScenario([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sim, warm, measure, err := BuildScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(warm, measure)
	if res.LTenantLatency.Count == 0 {
		t.Fatal("open-loop scenario produced nothing")
	}
}

func TestScenarioNamespaces(t *testing.T) {
	src := `{
	  "namespaces": 2,
	  "jobs": [
	    {"name": "a", "class": "L", "count": 1, "namespace": 0},
	    {"name": "b", "class": "T", "count": 2, "namespace": 1}
	  ],
	  "warmupMs": 10, "measureMs": 40
	}`
	sc, err := ParseScenario([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sim, warm, measure, err := BuildScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(warm, measure)
	if res.TTenantLatency.Count == 0 {
		t.Fatal("namespace scenario produced nothing")
	}
}

func TestScenarioValidationErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":                 `{`,
		"no jobs":                  `{"jobs":[]}`,
		"bad class":                `{"jobs":[{"name":"x","class":"Z","count":1}]}`,
		"zero count":               `{"jobs":[{"name":"x","class":"L","count":0}]}`,
		"bad machine":              `{"machine":"pdp11","jobs":[{"name":"x","class":"L","count":1}]}`,
		"bad stack":                `{"stack":"btrfs","jobs":[{"name":"x","class":"L","count":1}]}`,
		"bad pattern":              `{"jobs":[{"name":"x","class":"L","count":1,"pattern":"zigzag"}]}`,
		"bad namespace":            `{"namespaces":2,"jobs":[{"name":"x","class":"L","count":1,"namespace":5}]}`,
		"negative param":           `{"jobs":[{"name":"x","class":"L","count":1,"bs":-1}]}`,
		"negative ms":              `{"measureMs":-5,"jobs":[{"name":"x","class":"L","count":1}]}`,
		"traceLimit without trace": `{"traceLimit":100,"jobs":[{"name":"x","class":"L","count":1}]}`,
		"negative traceLimit":      `{"trace":true,"traceLimit":-1,"jobs":[{"name":"x","class":"L","count":1}]}`,
		"negative obsWindowUs":     `{"obsWindowUs":-5,"jobs":[{"name":"x","class":"L","count":1}]}`,
	}
	for name, src := range cases {
		if _, err := ParseScenario([]byte(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestScenarioObservabilityFields checks that trace/traceLimit/obsWindowUs
// arm the simulation straight from JSON: after a run, the trace JSON and
// metrics CSV exports carry data.
func TestScenarioObservabilityFields(t *testing.T) {
	src := `{
	  "warmupMs": 5, "measureMs": 20,
	  "trace": true, "traceLimit": 50, "obsWindowUs": 2000,
	  "jobs": [{"name": "db", "class": "L", "count": 2}]
	}`
	sc, err := ParseScenario([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sim, warm, measure, err := BuildScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(warm, measure)
	var trace, csv bytes.Buffer
	if err := sim.WriteTraceJSON(&trace); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(trace.Bytes()) {
		t.Fatal("scenario trace is not valid JSON")
	}
	if !strings.Contains(trace.String(), `"name":"read"`) && !strings.Contains(trace.String(), `"name":"write"`) {
		t.Fatal("scenario trace has no device slices")
	}
	if err := sim.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines < 3 {
		t.Fatalf("metrics CSV too short (%d lines):\n%s", lines, csv.String())
	}
}

func TestScenarioErrorsMentionJob(t *testing.T) {
	_, err := ParseScenario([]byte(`{"jobs":[{"name":"payroll","class":"L","count":-1}]}`))
	if err == nil || !strings.Contains(err.Error(), "payroll") {
		t.Fatalf("error should name the offending job: %v", err)
	}
}
