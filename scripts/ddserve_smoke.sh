#!/bin/sh
# ddserve end-to-end smoke test: boot the daemon, run a sweep, re-submit it
# to prove the cache serves the repeat, answer a what-if query, and shut
# down gracefully with SIGTERM. Needs only a POSIX shell and curl.
set -eu

PORT="${DDSERVE_PORT:-8077}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

fail() { echo "ddserve smoke: FAIL: $*" >&2; exit 1; }

go build -o "$DIR/ddserve" ./cmd/ddserve
"$DIR/ddserve" -addr "127.0.0.1:$PORT" -workers 2 >"$DIR/daemon.log" 2>&1 &
PID=$!

# Wait for the daemon to come up.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 50 ] || { cat "$DIR/daemon.log" >&2; fail "daemon never became healthy"; }
    sleep 0.2
done
echo "ddserve smoke: daemon healthy on $BASE"

cat >"$DIR/sweep.json" <<'EOF'
{"cores":2,"warmupMs":5,"measureMs":20,
 "jobs":[{"name":"db","class":"L","count":1},{"name":"bg","class":"T","count":1}],
 "sweep":[{"param":"count:bg","values":[1,2]}]}
EOF

# Sweep: two cells, run synchronously.
curl -sf -X POST --data-binary @"$DIR/sweep.json" "$BASE/v1/sweeps?wait=1" >"$DIR/job1.json"
grep -q '"state":"done"' "$DIR/job1.json" || { cat "$DIR/job1.json" >&2; fail "sweep did not finish"; }
curl -sf "$BASE/v1/jobs/j1/result" >"$DIR/res1.json"
grep -q '"grid":2' "$DIR/res1.json" || { cat "$DIR/res1.json" >&2; fail "sweep result missing grid"; }
grep -q 'count:bg=2' "$DIR/res1.json" || fail "sweep result missing cell labels"
echo "ddserve smoke: sweep of 2 cells done"

# Same spec again: must be served from the cache, byte-identical.
curl -sf -X POST --data-binary @"$DIR/sweep.json" "$BASE/v1/sweeps?wait=1" >"$DIR/job2.json"
grep -q '"cachedCells":2' "$DIR/job2.json" || { cat "$DIR/job2.json" >&2; fail "repeat sweep not served from cache"; }
curl -sf "$BASE/v1/jobs/j2/result" >"$DIR/res2.json"
cmp -s "$DIR/res1.json" "$DIR/res2.json" || fail "cached result differs from fresh run"
curl -sf "$BASE/metrics.json" >"$DIR/metrics.json"
grep -q '"cellsRun":2' "$DIR/metrics.json" || { cat "$DIR/metrics.json" >&2; fail "cache hit still re-simulated"; }
echo "ddserve smoke: repeat sweep served from cache, byte-identical"

# Prometheus scrape: /metrics serves text exposition with the fleet
# layer-latency summaries fed by the always-on profiler.
curl -sf "$BASE/metrics" >"$DIR/metrics.prom"
grep -q '^ddserve_cells_run_total 2$' "$DIR/metrics.prom" || { cat "$DIR/metrics.prom" >&2; fail "prometheus cells_run counter wrong"; }
grep -q '^# TYPE ddserve_layer_latency_seconds summary$' "$DIR/metrics.prom" || { cat "$DIR/metrics.prom" >&2; fail "prometheus exposition missing layer summaries"; }
grep -q 'ddserve_layer_latency_seconds{stack="daredevil",class="L",layer="queue_wait",quantile="0.99"}' "$DIR/metrics.prom" || fail "prometheus exposition missing layer quantile sample"
echo "ddserve smoke: prometheus exposition OK"

# What-if threshold query over the same base scenario (probes reuse cache).
cat >"$DIR/whatif.json" <<'EOF'
{"scenario":{"cores":2,"warmupMs":5,"measureMs":20,
  "jobs":[{"name":"db","class":"L","count":1},{"name":"bg","class":"T","count":1}]},
 "query":{"param":"count:bg","min":1,"max":4,"metric":"l_p99","sloUs":1000000}}
EOF
curl -sf -X POST --data-binary @"$DIR/whatif.json" "$BASE/v1/whatif?wait=1" >"$DIR/job3.json"
grep -q '"state":"done"' "$DIR/job3.json" || { cat "$DIR/job3.json" >&2; fail "whatif did not finish"; }
curl -sf "$BASE/v1/jobs/j3/result" >"$DIR/whatif-res.json"
grep -q '"answer":4' "$DIR/whatif-res.json" || { cat "$DIR/whatif-res.json" >&2; fail "whatif answer wrong"; }
echo "ddserve smoke: what-if answered"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "daemon did not exit after SIGTERM"
    sleep 0.2
done
wait "$PID" 2>/dev/null || fail "daemon exited non-zero after SIGTERM"
grep -q 'drained, bye' "$DIR/daemon.log" || { cat "$DIR/daemon.log" >&2; fail "daemon did not report a clean drain"; }
echo "ddserve smoke: graceful drain OK"
echo "ddserve smoke: PASS"
