package daredevil

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSimulationBasicRun(t *testing.T) {
	sim := NewSimulation(ServerMachine(4), StackDaredevil)
	sim.AddLTenants(4)
	sim.AddTTenants(8)
	res := sim.Run(20*Millisecond, 80*Millisecond)
	if res.LTenantLatency.Count == 0 {
		t.Fatal("no L completions")
	}
	if res.TThroughputMBps <= 0 {
		t.Fatal("no T throughput")
	}
	if res.CPUUtilization <= 0 || res.CPUUtilization > 1 {
		t.Fatalf("CPU utilization = %v", res.CPUUtilization)
	}
}

func TestSimulationStackNames(t *testing.T) {
	names := map[StackKind]string{
		StackVanilla:    "vanilla",
		StackBlkSwitch:  "blk-switch",
		StackStaticPart: "static-part",
		StackDareBase:   "dare-base",
		StackDareSched:  "dare-sched",
		StackDaredevil:  "dare-full",
	}
	for kind, want := range names {
		sim := NewSimulation(ServerMachine(2), kind)
		if got := sim.StackName(); got != want {
			t.Errorf("StackName(%s) = %q, want %q", kind, got, want)
		}
	}
}

func TestSimulationRunTwicePanics(t *testing.T) {
	sim := NewSimulation(ServerMachine(2), StackVanilla)
	sim.AddLTenants(1)
	sim.Run(Millisecond, 5*Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run must panic")
		}
	}()
	sim.Run(Millisecond, 5*Millisecond)
}

func TestSimulationNamespaces(t *testing.T) {
	sim := NewSimulation(ServerMachine(4), StackDaredevil)
	sim.CreateNamespaces(4)
	sim.AddLTenantsNS(2, 0)
	sim.AddTTenantsNS(8, 1)
	sim.AddTTenantsNS(8, 2)
	res := sim.Run(20*Millisecond, 60*Millisecond)
	if res.LTenantLatency.Count == 0 || res.TTenantLatency.Count == 0 {
		t.Fatal("namespace workloads did not run")
	}
}

func TestSimulationCustomJob(t *testing.T) {
	sim := NewSimulation(ServerMachine(2), StackDaredevil)
	cfg := DefaultLTenantConfig("custom", 0)
	cfg.BS = 8192
	sim.AddJob(cfg)
	res := sim.Run(10*Millisecond, 30*Millisecond)
	if res.LTenantLatency.Count == 0 {
		t.Fatal("custom job did not run")
	}
}

func TestSimulationYCSBApp(t *testing.T) {
	sim := NewSimulation(ServerMachine(4), StackDaredevil)
	sim.AddTTenants(4)
	app := sim.AddYCSB(YCSBA, 0, 2)
	sim.Run(20*Millisecond, 100*Millisecond)
	if app.Ops() == 0 {
		t.Fatal("YCSB app completed no operations")
	}
	if app.OpLatency(OpUpdate).Count == 0 {
		t.Fatal("no update latencies recorded")
	}
}

func TestSimulationMailApp(t *testing.T) {
	sim := NewSimulation(ServerMachine(4), StackVanilla)
	app := sim.AddMailserver(0)
	sim.Run(20*Millisecond, 100*Millisecond)
	if app.OpLatency(OpFsync).Count == 0 {
		t.Fatal("no fsync latencies recorded")
	}
}

func TestDaredevilBeatsVanillaViaPublicAPI(t *testing.T) {
	run := func(kind StackKind) Result {
		sim := NewSimulation(ServerMachine(4), kind)
		sim.AddLTenants(4)
		sim.AddTTenants(16)
		return sim.Run(30*Millisecond, 120*Millisecond)
	}
	dd := run(StackDaredevil)
	van := run(StackVanilla)
	if dd.LTenantLatency.Mean*3 >= van.LTenantLatency.Mean {
		t.Fatalf("daredevil (%v) should be well below vanilla (%v)",
			dd.LTenantLatency.Mean, van.LTenantLatency.Mean)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := RunExperiment(&bytes.Buffer{}, "nope", QuickScale); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "table1", QuickScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vanilla", "blk-switch", "daredevil", "multi-namespace"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentNamesComplete(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 18 {
		t.Fatalf("got %d experiments, want 18 (table1 + 10 figures + 7 extensions)", len(names))
	}
	// Every listed experiment must dispatch (checked cheaply via fig2 only
	// plus the name validation of the rest).
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate experiment %q", n)
		}
		seen[n] = true
	}
}

func TestAddYCSBValidation(t *testing.T) {
	sim := NewSimulation(ServerMachine(2), StackVanilla)
	defer func() {
		if recover() == nil {
			t.Fatal("zero clients must panic")
		}
	}()
	sim.AddYCSB(YCSBA, 0, 0)
}

func TestBreakdownComponents(t *testing.T) {
	sim := NewSimulation(ServerMachine(4), StackDaredevil)
	sim.EnableBreakdown()
	sim.AddLTenants(4)
	sim.AddTTenants(8)
	res := sim.Run(20*Millisecond, 80*Millisecond)
	if res.LCompletionDelay.Count == 0 {
		t.Fatal("breakdown must record completion delays")
	}
	if res.LCompletionDelay.Mean <= 0 {
		t.Fatal("completion delay must be positive")
	}
	if res.LCrossCoreFraction < 0 || res.LCrossCoreFraction > 1 {
		t.Fatalf("cross-core fraction %v out of range", res.LCrossCoreFraction)
	}
}

func TestNoBreakdownByDefault(t *testing.T) {
	sim := NewSimulation(ServerMachine(2), StackVanilla)
	sim.AddLTenants(1)
	res := sim.Run(5*Millisecond, 20*Millisecond)
	if res.LCompletionDelay.Count != 0 {
		t.Fatal("breakdown stats must be absent unless enabled")
	}
}

func TestTraceCapture(t *testing.T) {
	sim := NewSimulation(ServerMachine(2), StackDaredevil)
	sim.EnableTrace(10)
	sim.AddLTenants(2)
	sim.Run(5*Millisecond, 30*Millisecond)
	var buf bytes.Buffer
	sim.WriteTrace(&buf)
	out := buf.String()
	if !strings.Contains(out, "in-NSQ") || !strings.Contains(out, "fio-L") {
		t.Fatalf("trace table incomplete:\n%s", out)
	}
}

func TestWriteTraceNoOpWithoutEnable(t *testing.T) {
	sim := NewSimulation(ServerMachine(2), StackVanilla)
	sim.AddLTenants(1)
	sim.Run(Millisecond, 5*Millisecond)
	var buf bytes.Buffer
	sim.WriteTrace(&buf)
	if buf.Len() != 0 {
		t.Fatal("WriteTrace must be a no-op unless enabled")
	}
}

func TestRunExperimentDispatchesAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	tiny := Scale{Warmup: 10 * Millisecond, Measure: 30 * Millisecond}
	for _, name := range ExperimentNames() {
		var buf bytes.Buffer
		if err := RunExperiment(&buf, name, tiny); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: no output", name)
		}
	}
}

func TestRunExperimentJSON(t *testing.T) {
	data, err := RunExperimentJSON("table1", QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := decoded["Rows"]; !ok {
		t.Fatal("JSON missing Rows")
	}
	if _, err := RunExperimentJSON("nope", QuickScale); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
