// Command benchjson captures the repo's performance baseline in one
// machine-readable file. It runs the event-core microbenchmarks and the
// whole-simulator benchmark through `go test -bench`, times a full
// `ddbench -quick all` sweep serially and in parallel, and writes the
// results as JSON (BENCH_harness.json by default).
//
// The file is the artifact `make bench` and CI publish: it locks in ns/op
// and allocs/op for the allocation-free event core and the wall-clock
// speedup of the experiment fan-out, per machine. When the output file
// already exists, the old contents are kept next to it with a .prev.json
// suffix so a re-baseline commit carries both sides of the comparison.
//
// Usage:
//
//	benchjson [-out BENCH_harness.json] [-smoke]
//
// -smoke trims the run for CI: short benchtime and the table1 experiment
// instead of the full sweep.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"daredevil/internal/walltime"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// DDBench is the wall-clock comparison of the experiment harness run
// serially and with the worker pool.
type DDBench struct {
	Experiments     string  `json:"experiments"`
	Jobs            int     `json:"jobs"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
}

// Baseline is the file layout.
type Baseline struct {
	GeneratedUnix int64       `json:"generated_unix"`
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	NumCPU        int         `json:"num_cpu"`
	Smoke         bool        `json:"smoke,omitempty"`
	Benchmarks    []Benchmark `json:"benchmarks"`
	DDBench       DDBench     `json:"ddbench"`
}

func main() { os.Exit(realMain()) }

func realMain() int {
	out := flag.String("out", "BENCH_harness.json", "output file")
	smoke := flag.Bool("smoke", false, "CI mode: short benchtime, table1 instead of the full sweep")
	flag.Parse()

	benchtime := ""
	experiments := []string{"all"}
	if *smoke {
		benchtime = "1000x"
		// table1 is a static table; ext-gc is the smallest experiment that
		// actually exercises the fan-out, so its timing is meaningful.
		experiments = []string{"ext-gc"}
	}

	var benches []Benchmark
	runs := [][]string{
		{"-bench", "BenchmarkEngine", "./internal/sim"},
		{"-bench", "BenchmarkSimulatorThroughput", "."},
		{"-bench", "BenchmarkObsOff", "."},
		{"-bench", "BenchmarkProfOff", "."},
	}
	for _, r := range runs {
		bs, err := runGoBench(r[1], r[2], benchtime)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
		benches = append(benches, bs...)
	}

	dd, err := timeDDBench(experiments)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}

	b := Baseline{
		GeneratedUnix: walltime.Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Smoke:         *smoke,
		Benchmarks:    benches,
		DDBench:       dd,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	// Snapshot the baseline being replaced as <out-minus-.json>.prev.json:
	// a deliberate re-baseline then carries its before/after pair in one
	// commit, and benchguard's limits stay auditable against the numbers
	// they superseded.
	if prior, err := os.ReadFile(*out); err == nil {
		prev := strings.TrimSuffix(*out, ".json") + ".prev.json"
		if err := os.WriteFile(prev, prior, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: keeping previous baseline:", err)
			return 1
		}
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	fmt.Printf("wrote %s (%d benchmarks, ddbench %s: %.2fs serial / %.2fs -j %d, %.2fx)\n",
		*out, len(benches), dd.Experiments, dd.SerialSeconds, dd.ParallelSeconds, dd.Jobs, dd.Speedup)
	return 0
}

// runGoBench executes one `go test -bench` invocation and parses its
// Benchmark lines.
func runGoBench(pattern, pkg, benchtime string) ([]Benchmark, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem", pkg}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outp, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return parseBenchLines(string(outp))
}

// parseBenchLines extracts Benchmark entries from `go test -bench` output.
// A line looks like:
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   1 allocs/op   9204 events
//
// Only the ns/op, B/op and allocs/op pairs are kept; custom metrics are
// ignored.
func parseBenchLines(out string) ([]Benchmark, error) {
	var res []Benchmark
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: strings.TrimSuffix(f[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))), Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		res = append(res, b)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no Benchmark lines in output:\n%s", out)
	}
	return res, nil
}

// timeDDBench builds ddbench once, then times the experiment list with
// -j 1 and with the machine's full worker count.
func timeDDBench(experiments []string) (DDBench, error) {
	tmp, err := os.MkdirTemp("", "benchjson")
	if err != nil {
		return DDBench{}, err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "ddbench")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/ddbench").CombinedOutput(); err != nil {
		return DDBench{}, fmt.Errorf("building ddbench: %v\n%s", err, out)
	}

	jobs := runtime.GOMAXPROCS(0)
	serial, err := timeRun(bin, 1, experiments)
	if err != nil {
		return DDBench{}, err
	}
	parallel, err := timeRun(bin, jobs, experiments)
	if err != nil {
		return DDBench{}, err
	}
	d := DDBench{
		Experiments:     "quick " + strings.Join(experiments, " "),
		Jobs:            jobs,
		SerialSeconds:   serial.Seconds(),
		ParallelSeconds: parallel.Seconds(),
	}
	if parallel > 0 {
		d.Speedup = serial.Seconds() / parallel.Seconds()
	}
	return d, nil
}

func timeRun(bin string, jobs int, experiments []string) (time.Duration, error) {
	args := append([]string{"-quick", "-j", strconv.Itoa(jobs)}, experiments...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = nil // discard: only wall-clock matters here
	cmd.Stderr = os.Stderr
	sw := walltime.Start()
	if err := cmd.Run(); err != nil {
		return 0, fmt.Errorf("ddbench -j %d: %w", jobs, err)
	}
	return sw.Elapsed(), nil
}
