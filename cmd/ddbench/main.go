// Command ddbench regenerates the paper's tables and figures on the
// simulated testbed. Each experiment prints the rows/series the paper
// reports.
//
// Usage:
//
//	ddbench [-quick] [-j N] [-warmup DUR] [-measure DUR] <experiment>...
//	ddbench all
//
// Experiments: table1 fig2 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"daredevil/internal/harness"
	"daredevil/internal/sim"
	"daredevil/internal/walltime"
)

var experiments = []string{
	"table1", "fig2", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14",
	"ext-sched", "ext-wrr", "ext-poll", "ext-virtio", "ext-webapp",
	"ext-gc", "ext-fault",
}

func main() { os.Exit(realMain()) }

// realMain returns the exit code instead of calling os.Exit so the
// deferred profile writers always flush.
func realMain() int {
	quick := flag.Bool("quick", false, "use the quick scale (shorter windows)")
	warmup := flag.Duration("warmup", 0, "override warmup window (e.g. 200ms)")
	measure := flag.Duration("measure", 0, "override measurement window (e.g. 1s)")
	svgDir := flag.String("svg", "", "also write <experiment>.svg charts into this directory")
	jsonDir := flag.String("json", "", "also write machine-readable <experiment>.json results into this directory")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "run up to N experiment cells in parallel (results are identical to -j 1)")
	obsDir := flag.String("obs", "", "run the instrumented demo cell and write trace.json, metrics.csv, metrics.svg, flight.txt into this directory (no experiment needed)")
	profDir := flag.String("prof", "", "run the profiled comparison grid (every stack x two tenant mixes) and write per-cell and merged layer-latency artifacts into this directory (no experiment needed)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = usage
	flag.Parse()

	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "ddbench: -j must be at least 1 (got %d)\n\n", *jobs)
		usage()
		return 2
	}
	harness.SetParallelism(*jobs)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ddbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ddbench:", err)
			}
		}()
	}

	sc := harness.DefaultScale
	if *quick {
		sc = harness.QuickScale
	}
	if *warmup > 0 {
		sc.Warmup = sim.Duration(warmup.Nanoseconds())
	}
	if *measure > 0 {
		sc.Measure = sim.Duration(measure.Nanoseconds())
	}

	if *obsDir != "" {
		if err := runObs(*obsDir, sc); err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			return 1
		}
		if flag.NArg() == 0 && *profDir == "" {
			return 0
		}
	}
	if *profDir != "" {
		if err := runProf(*profDir, sc); err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			return 1
		}
		if flag.NArg() == 0 {
			return 0
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments
	}
	for _, dir := range []string{*svgDir, *jsonDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			return 1
		}
	}
	for _, name := range args {
		if err := runExport(os.Stdout, name, sc, *svgDir, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, "ddbench:", err)
			return 1
		}
	}
	return 0
}

// runObs runs the instrumented demo cell (Daredevil under brownout with
// tracing, metrics sampling, and the flight recorder armed) and writes its
// four exports into dir.
func runObs(dir string, sc harness.Scale) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d, err := harness.RunObsDemo(sc)
	if err != nil {
		return err
	}
	for _, out := range []struct {
		name string
		data []byte
	}{
		{"trace.json", d.Trace},
		{"metrics.csv", d.Metrics},
		{"metrics.svg", d.SVG},
		{"flight.txt", d.Flight},
	} {
		path := filepath.Join(dir, out.name)
		if err := os.WriteFile(path, out.data, 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", path)
	}
	return nil
}

// runProf runs the profiled comparison grid and writes the merged fleet
// artifacts (profile.txt table, profile.folded flame-graph stacks,
// profile.svg stacked bars, profile.json mergeable digests) plus one
// breakdown table and SVG per cell into dir. Output bytes are identical at
// any -j width.
func runProf(dir string, sc harness.Scale) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sw := walltime.Start()
	d, err := harness.RunProfDemo(sc)
	if err != nil {
		return err
	}
	outs := []struct {
		name string
		data []byte
	}{
		{"profile.txt", d.Breakdown},
		{"profile.folded", d.Folded},
		{"profile.svg", d.SVG},
		{"profile.json", d.JSON},
	}
	for _, c := range d.Cells {
		outs = append(outs,
			struct {
				name string
				data []byte
			}{c.Label + ".txt", c.Breakdown},
			struct {
				name string
				data []byte
			}{c.Label + ".svg", c.SVG})
	}
	for _, out := range outs {
		path := filepath.Join(dir, out.name)
		if err := os.WriteFile(path, out.data, 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", path)
	}
	fmt.Printf("[prof grid: %d cells, %d requests profiled, done in %v]\n",
		len(d.Cells), d.Merged.Requests(), sw.Elapsed().Round(time.Millisecond))
	return nil
}

// svgWriter is implemented by results that can render a chart.
type svgWriter interface {
	WriteSVG(io.Writer) error
}

// runWithSVG runs the experiment and, when dir is set and the result can
// draw itself, writes <name>.svg there too (kept for tests).
func runWithSVG(w io.Writer, name string, sc harness.Scale, dir string) error {
	return runExport(w, name, sc, dir, "")
}

// runExport runs the experiment and optionally writes SVG and JSON files.
func runExport(w io.Writer, name string, sc harness.Scale, svgDir, jsonDir string) error {
	res, err := runResult(w, name, sc)
	if err != nil {
		return err
	}
	if svgDir != "" {
		if sw, ok := res.(svgWriter); ok {
			path := filepath.Join(svgDir, name+".svg")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := sw.WriteSVG(f); err != nil {
				f.Close()
				return fmt.Errorf("rendering %s: %w", path, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "[wrote %s]\n", path)
		}
	}
	if jsonDir != "" {
		path := filepath.Join(jsonDir, name+".json")
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding %s: %w", path, err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "[wrote %s]\n", path)
	}
	return nil
}

// run executes one experiment and prints its rows (kept for tests).
func run(w io.Writer, name string, sc harness.Scale) error {
	_, err := runResult(w, name, sc)
	return err
}

// textWriter is implemented by every experiment result.
type textWriter interface {
	WriteText(io.Writer)
}

func runResult(w io.Writer, name string, sc harness.Scale) (any, error) {
	sw := walltime.Start()
	var res textWriter
	switch name {
	case "table1":
		res = harness.RunTable1()
	case "fig2":
		res = harness.RunFig2(sc)
	case "fig6":
		res = harness.RunFig6(sc)
	case "fig7":
		res = harness.RunFig7(sc)
	case "fig8":
		res = harness.RunFig8(sc)
	case "fig9":
		res = harness.RunFig9(sc)
	case "fig10":
		res = harness.RunFig10(sc)
	case "fig11":
		res = harness.RunFig11(sc)
	case "fig12":
		res = harness.RunFig12(sc)
	case "fig13":
		res = harness.RunFig13(sc)
	case "fig14":
		res = harness.RunFig14(sc)
	case "ext-sched":
		res = harness.RunExtSchedulers(sc)
	case "ext-wrr":
		res = harness.RunExtWRR(sc)
	case "ext-poll":
		res = harness.RunExtPolling(sc)
	case "ext-virtio":
		res = harness.RunExtVirtio(sc)
	case "ext-webapp":
		res = harness.RunExtWebapp(sc)
	case "ext-gc":
		res = harness.RunExtGC(sc)
	case "ext-fault":
		res = harness.RunExtFault(harness.DefaultFaultSeed, sc)
	default:
		return nil, fmt.Errorf("unknown experiment %q (want one of %v)", name, experiments)
	}
	res.WriteText(w)
	fmt.Fprintf(w, "[%s done in %v]\n", name, sw.Elapsed().Round(time.Millisecond))
	return res, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `ddbench regenerates the Daredevil paper's tables and figures.

usage: ddbench [-quick] [-j N] [-warmup DUR] [-measure DUR] <experiment>...
experiments: %v (or "all")
`, experiments)
	flag.PrintDefaults()
}
