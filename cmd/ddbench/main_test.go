package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"daredevil/internal/harness"
	"daredevil/internal/sim"
)

var testScale = harness.Scale{Warmup: 10 * sim.Millisecond, Measure: 40 * sim.Millisecond}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bogus", testScale); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1", testScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "daredevil", "[table1 done in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEveryExperimentDispatches(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, name := range experiments {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, name, testScale); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestSVGOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	for _, name := range []string{"fig2", "fig6", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig8"} {
		if err := runWithSVG(&buf, name, testScale, dir); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, name+".svg"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "<svg") {
			t.Fatalf("%s: not an SVG", name)
		}
	}
}

func TestSVGSkippedForTextOnlyResults(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := runWithSVG(&buf, "table1", testScale, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.svg")); err == nil {
		t.Fatal("table1 should not emit an SVG (no chart form)")
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := runExport(&buf, "fig2", testScale, "", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := decoded["Rows"]; !ok {
		t.Fatal("JSON missing Rows")
	}
}

// TestProfOutput runs the profiled comparison grid at test scale and
// checks every artifact lands: the merged fleet set plus one table and SVG
// per cell.
func TestProfOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-cell profiled grid")
	}
	dir := t.TempDir()
	small := harness.Scale{Warmup: 5 * sim.Millisecond, Measure: 20 * sim.Millisecond}
	if err := runProf(dir, small); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"profile.txt", "profile.folded", "profile.svg", "profile.json",
		"daredevil-2L2T.txt", "daredevil-2L4T.svg", "vanilla-2L2T.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	folded, _ := os.ReadFile(filepath.Join(dir, "profile.folded"))
	for _, want := range []string{"daredevil;L;", "vanilla;T;", ";queue_wait ", ";chip "} {
		if !strings.Contains(string(folded), want) {
			t.Fatalf("folded stacks missing %q", want)
		}
	}
	merged, _ := os.ReadFile(filepath.Join(dir, "profile.json"))
	if !json.Valid(merged) {
		t.Fatal("profile.json is not valid JSON")
	}
}
