// Command ddvet runs the repository's determinism and hot-path lint suite
// (see internal/analysis): simdeterminism, cellisolation, hotpathalloc,
// unitcheck, slabsafety, obscost, and argsafety.
//
// Standalone (the form make lint and CI use):
//
//	go run ./cmd/ddvet ./...
//	ddvet -config .ddvet.json ./internal/nvme
//
// Standalone runs keep a per-package result cache (out/ddvetcache under
// the module root, see internal/analysis/vetcache): packages whose
// sources, config, and tool build are unchanged replay their diagnostics
// without being parsed or type-checked. -nocache forces a cold run,
// -cache-dir relocates the cache, -timings prints per-analyzer wall time.
//
// As a go vet tool, speaking the unitchecker .cfg protocol so the go
// command handles package loading and caching:
//
//	go build -o bin/ddvet ./cmd/ddvet
//	go vet -vettool=$(pwd)/bin/ddvet ./...
//
// Exit status: 0 clean, 1 diagnostics found (2 in vettool mode, matching
// unitchecker), 3 tool failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"daredevil/internal/analysis/argsafety"
	"daredevil/internal/analysis/cellisolation"
	"daredevil/internal/analysis/config"
	"daredevil/internal/analysis/framework"
	"daredevil/internal/analysis/hotpathalloc"
	"daredevil/internal/analysis/load"
	"daredevil/internal/analysis/obscost"
	"daredevil/internal/analysis/simdeterminism"
	"daredevil/internal/analysis/slabsafety"
	"daredevil/internal/analysis/unitcheck"
	"daredevil/internal/analysis/vetcache"
	"daredevil/internal/walltime"
)

// ConfigFile is the optional override at the module root.
const ConfigFile = ".ddvet.json"

// CacheDirName is the default cache location under the module root.
const CacheDirName = "out/ddvetcache"

// analyzers builds the full suite under cfg.
func analyzers(cfg *config.Config) []*framework.Analyzer {
	return []*framework.Analyzer{
		simdeterminism.New(cfg),
		cellisolation.New(cfg),
		hotpathalloc.New(cfg),
		unitcheck.New(cfg),
		slabsafety.New(cfg),
		obscost.New(cfg),
		argsafety.New(cfg),
	}
}

// timed wraps every analyzer's Run so a -timings run can report where the
// wall time went. Aggregation is by suite index; walltime keeps the
// simdeterminism analyzer's own time.Now ban out of this package.
func timed(suite []*framework.Analyzer) (wrapped []*framework.Analyzer, elapsed []*time.Duration) {
	elapsed = make([]*time.Duration, len(suite))
	for i, a := range suite {
		d := new(time.Duration)
		elapsed[i] = d
		run := a.Run
		a.Run = func(pass *framework.Pass) {
			sw := walltime.Start()
			run(pass)
			*d += sw.Elapsed()
		}
	}
	return suite, elapsed
}

func main() {
	// The go command probes vet tools with -V=full (for its build cache
	// key) and -flags (to learn pass-through flags) before handing each
	// package over as a JSON .cfg file.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// The go command caches vet results keyed by this line; a
			// "devel" version must carry a content hash of the tool.
			fmt.Printf("%s version devel buildID=%x\n", filepath.Base(os.Args[0]), selfHash())
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vettool(os.Args[1]))
	}
	os.Exit(standalone())
}

// selfHash hashes the running executable for the -V=full build ID.
func selfHash() []byte {
	exe, err := os.Executable()
	if err != nil {
		return []byte("unknown")
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return []byte("unknown")
	}
	sum := sha256.Sum256(data)
	return sum[:]
}

// loadConfig reads .ddvet.json at the module root above dir, if present.
func loadConfig(dir, explicit string) (*config.Config, error) {
	if explicit != "" {
		return config.Load(explicit)
	}
	root, err := load.ModuleRoot(dir)
	if err != nil {
		return config.Default(), nil
	}
	path := filepath.Join(root, ConfigFile)
	if _, err := os.Stat(path); err != nil {
		return config.Default(), nil
	}
	return config.Load(path)
}

// standalone loads packages itself via go list and prints diagnostics,
// replaying unchanged packages from the result cache.
func standalone() int {
	fs := flag.NewFlagSet("ddvet", flag.ExitOnError)
	configPath := fs.String("config", "", "path to a ddvet config (default: .ddvet.json at the module root)")
	list := fs.Bool("list", false, "list analyzers and exit")
	nocache := fs.Bool("nocache", false, "ignore and do not write the result cache")
	cacheDir := fs.String("cache-dir", "", "result cache directory (default: "+CacheDirName+" at the module root)")
	timings := fs.Bool("timings", false, "print per-analyzer wall time to stderr")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ddvet [-config file] [-nocache] [-cache-dir dir] [-timings] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 3
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddvet:", err)
		return 3
	}
	cfg, err := loadConfig(cwd, *configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddvet:", err)
		return 3
	}
	suite := analyzers(cfg)
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var elapsed []*time.Duration
	if *timings {
		suite, elapsed = timed(suite)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var cache *vetcache.Cache
	if !*nocache {
		dir := *cacheDir
		if dir == "" {
			root, err := load.ModuleRoot(cwd)
			if err != nil {
				root = cwd
			}
			dir = filepath.Join(root, filepath.FromSlash(CacheDirName))
		}
		if cache, err = vetcache.Open(dir); err != nil {
			// A read-only checkout still lints; it just lints cold.
			fmt.Fprintln(os.Stderr, "ddvet: cache disabled:", err)
			cache = nil
		}
	}

	found, code := run(cwd, cfg, suite, cache, patterns)
	if code != 0 {
		return code
	}
	if *timings {
		for i, a := range suite {
			fmt.Fprintf(os.Stderr, "ddvet: timing %-16s %s\n", a.Name, elapsed[i].Round(time.Microsecond))
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "ddvet: %d problem(s)\n", found)
		return 1
	}
	return 0
}

// run lints the matched packages in go list order: cache hits replay,
// misses are loaded (in one batch), analyzed, and stored. Diagnostic
// order is deterministic either way — package order from go list,
// position order within a package from the framework.
func run(cwd string, cfg *config.Config, suite []*framework.Analyzer, cache *vetcache.Cache, patterns []string) (found, code int) {
	metas, err := load.List(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddvet:", err)
		return 0, 3
	}

	version := fmt.Sprintf("%x", selfHash())
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddvet:", err)
		return 0, 3
	}

	keys := map[string]string{}
	cached := map[string][]vetcache.Diagnostic{}
	var misses []string
	for _, m := range metas {
		if cache == nil {
			misses = append(misses, m.ImportPath)
			continue
		}
		key, err := vetcache.Key(version, cfgJSON, m.GoFiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddvet:", err)
			return 0, 3
		}
		keys[m.ImportPath] = key
		if diags, ok := cache.Get(key); ok {
			cached[m.ImportPath] = diags
		} else {
			misses = append(misses, m.ImportPath)
		}
	}

	pkgs := map[string]*framework.Package{}
	if len(misses) > 0 {
		loaded, err := load.Load(cwd, misses)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddvet:", err)
			return 0, 3
		}
		for _, pkg := range loaded {
			pkgs[pkg.ImportPath] = pkg
		}
	}

	for _, m := range metas {
		if diags, ok := cached[m.ImportPath]; ok {
			for _, d := range diags {
				pos := token.Position{Filename: d.File, Line: d.Line, Column: d.Col}
				fmt.Printf("%s: %s: %s\n", relPos(cwd, pos), d.Analyzer, d.Message)
				found++
			}
			continue
		}
		pkg, ok := pkgs[m.ImportPath]
		if !ok {
			continue
		}
		diags := framework.Run(pkg, cfg, suite)
		store := []vetcache.Diagnostic{}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			store = append(store, vetcache.Diagnostic{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
			fmt.Printf("%s: %s: %s\n", relPos(cwd, pos), d.Analyzer, d.Message)
			found++
		}
		if cache != nil {
			if err := cache.Put(keys[m.ImportPath], m.ImportPath, store); err != nil {
				fmt.Fprintln(os.Stderr, "ddvet: cache write:", err)
			}
		}
	}
	return found, 0
}

// relPos renders a position relative to dir for stable, clickable output.
func relPos(dir string, pos token.Position) string {
	if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos.String()
}

// vetConfig is the JSON the go command writes for unitchecker-protocol
// tools: the package's files plus the import map and export data of every
// dependency, so no further package loading is needed.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// vettool analyzes one package described by cfgFile.
func vettool(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddvet:", err)
		return 3
	}
	var vc vetConfig
	if err := json.Unmarshal(data, &vc); err != nil {
		fmt.Fprintf(os.Stderr, "ddvet: parse %s: %v\n", cfgFile, err)
		return 3
	}
	// The go command requires the facts file to exist even though ddvet's
	// analyzers exchange no facts.
	if vc.VetxOutput != "" {
		if err := os.WriteFile(vc.VetxOutput, []byte("ddvet"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ddvet:", err)
			return 3
		}
	}
	if vc.VetxOnly {
		return 0
	}
	// Test packages get .cfg files too; the determinism contract
	// deliberately exempts tests.
	if strings.HasSuffix(vc.ImportPath, ".test") || strings.HasSuffix(vc.ImportPath, "_test") ||
		strings.Contains(vc.ImportPath, " [") {
		return 0
	}

	cfg, err := loadConfig(vc.Dir, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddvet:", err)
		return 3
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range vc.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddvet:", err)
			return 3
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := vc.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := vc.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := load.Check(fset, imp, vc.ImportPath, files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddvet:", err)
		return 3
	}

	diags := framework.Run(pkg, cfg, analyzers(cfg))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
