package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"daredevil/internal/analysis/config"
	"daredevil/internal/analysis/load"
	"daredevil/internal/analysis/vetcache"
)

// buildDDVet compiles the ddvet binary once into a test temp dir.
func buildDDVet(t *testing.T) string {
	t.Helper()
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "ddvet")
	cmd := exec.Command("go", "build", "-o", bin, "daredevil/cmd/ddvet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ddvet: %v\n%s", err, out)
	}
	return bin
}

// TestVersionProtocol checks the -V=full line the go command keys its vet
// cache on: name, "version devel", and a hex build ID.
func TestVersionProtocol(t *testing.T) {
	bin := buildDDVet(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("ddvet -V=full: %v", err)
	}
	if !regexp.MustCompile(`^ddvet version devel buildID=[0-9a-f]{64}\n$`).Match(out) {
		t.Errorf("-V=full output %q does not match the vettool protocol", out)
	}
}

// TestStandaloneEndToEnd builds a throwaway module with one sim-ordered
// package: a wall-clock call must fail the run with a diagnostic, and the
// fixed version must pass.
func TestStandaloneEndToEnd(t *testing.T) {
	bin := buildDDVet(t)
	dir := t.TempDir()

	write := func(rel, body string) {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/tmpmod\n\ngo 1.22\n")
	write(".ddvet.json", `{"simPackages": ["example.com/tmpmod/cell"]}`+"\n")
	write("cell/cell.go", `package cell

import "time"

func Now() int64 { return time.Now().Unix() }
`)

	run := func() (string, int) {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("run ddvet: %v\n%s", err, out)
		}
		return string(out), code
	}

	out, code := run()
	if code != 1 {
		t.Fatalf("ddvet on wall-clock cell: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "sim-ordered package imports \"time\"") ||
		!strings.Contains(out, "time.Now reads the host wall clock") {
		t.Errorf("missing expected diagnostics:\n%s", out)
	}

	write("cell/cell.go", `package cell

func Now() int64 { return 0 }
`)
	if out, code := run(); code != 0 {
		t.Errorf("ddvet on clean cell: exit %d, want 0\n%s", code, out)
	}
}

// TestRunCacheHitReplays proves the warm path replays cached diagnostics
// instead of re-analyzing: after a first (miss) run populates the cache,
// the single entry is overwritten with a sentinel diagnostic, and a
// second run reports it — a fresh analysis of the clean package would
// have found nothing.
func TestRunCacheHitReplays(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cache, err := vetcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pattern := []string{"daredevil/internal/walltime"}

	found, code := run(cwd, cfg, analyzers(cfg), cache, pattern)
	if code != 0 || found != 0 {
		t.Fatalf("cold run: found=%d code=%d, want 0 0", found, code)
	}
	entries, err := os.ReadDir(cache.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d cache entries, want 1", len(entries))
	}
	key := strings.TrimSuffix(entries[0].Name(), ".json")
	sentinel := []vetcache.Diagnostic{{File: "x.go", Line: 1, Col: 1, Analyzer: "sentinel", Message: "replayed from cache"}}
	if err := cache.Put(key, "daredevil/internal/walltime", sentinel); err != nil {
		t.Fatal(err)
	}

	// Silence the sentinel's replayed line; the count is the assertion.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	found, code = run(cwd, cfg, analyzers(cfg), cache, pattern)
	os.Stdout = old
	null.Close()

	if code != 0 {
		t.Fatalf("warm run: code=%d, want 0", code)
	}
	if found != 1 {
		t.Fatalf("warm run found %d diagnostics, want the 1 sentinel replayed from cache", found)
	}
}

// TestRunNoCacheComputes pins the -nocache path: a nil cache analyzes
// fresh every time and the clean package stays clean.
func TestRunNoCacheComputes(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	found, code := run(cwd, cfg, analyzers(cfg), nil, []string{"daredevil/internal/walltime"})
	if code != 0 || found != 0 {
		t.Fatalf("found=%d code=%d, want 0 0", found, code)
	}
}
