// Command ddserve runs the capacity-planning daemon: an HTTP/JSON service
// that accepts scenario sweeps and what-if threshold queries, schedules
// them onto a bounded simulation worker pool, and caches completed cells.
//
//	ddserve -addr :8077 &
//	curl -s localhost:8077/healthz
//	curl -s -X POST --data-binary @scenario.json 'localhost:8077/v1/sweeps?wait=1'
//	curl -s localhost:8077/v1/jobs/j1/result
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, accepted jobs
// run to completion (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daredevil/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	workers := flag.Int("workers", 2, "concurrent job runners")
	queueDepth := flag.Int("queue", 16, "admission queue depth (full queue => 429)")
	cellBudget := flag.Int("cell-budget", 64, "max grid cells per request (over => 400)")
	cacheEntries := flag.Int("cache", 256, "LRU result-cache entries")
	cellJ := flag.Int("j", 0, "per-job cell fan-out (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CellBudget:      *cellBudget,
		CacheEntries:    *cacheEntries,
		CellParallelism: *cellJ,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddserve:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("ddserve: listening on %s (workers=%d queue=%d budget=%d cache=%d rev=%s)\n",
		ln.Addr(), *workers, *queueDepth, *cellBudget, *cacheEntries, srv.GitRev())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Printf("ddserve: %v received, draining\n", got)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "ddserve:", err)
		os.Exit(1)
	}

	// Stop admission first so every in-flight and queued job finishes,
	// then close the listener once results are durable in the jobs map.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ddserve: drain:", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "ddserve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("ddserve: drained, bye")
}
