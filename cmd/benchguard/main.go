// Command benchguard defends the simulator's allocation and wall-time
// discipline in CI. It re-runs the guarded benchmark suites with -benchmem,
// parses allocs/op and ns/op, and compares both against the committed
// baseline in BENCH_harness.json.
//
//	go run ./cmd/benchguard                     # default suites vs baseline
//	go run ./cmd/benchguard -tolerance 0.10     # explicit allocs/op budget
//	go run ./cmd/benchguard -ns-tolerance 0.25  # looser wall-time budget
//	go run ./cmd/benchguard -ns-tolerance -1    # allocs-only (old behavior)
//	go run ./cmd/benchguard -suites ./internal/sim=BenchmarkEngine
//
// Three suites are guarded by default: the event-core benchmarks (the
// allocation-free engine hot path), the obs-off device benchmark, which
// pins the cost of the observability hooks when no observer is attached —
// a span stamp or flight-ring record that starts allocating on its disabled
// path shows up here as an allocs/op regression — and the whole-simulator
// throughput benchmark, which locks in the timing-wheel and slab-allocation
// wins end to end (a regression there means a hot path started allocating
// per event again, not that one microbenchmark wobbled).
//
// A benchmark whose fresh allocs/op exceeds its baseline by more than the
// tolerance fails the run. Zero-allocation baselines get no budget at all:
// the first allocation on the event hot path is the regression, which is
// the property BenchmarkEngineEventThroughput exists to pin.
//
// ns/op is guarded too, with its own, deliberately wider tolerance
// (default +15%): wall time on shared runners is noisy in a way allocation
// counts are not, so the ns gate is meant to catch step regressions — a
// closure binding per event, a lost fast path — not single-digit drift.
// The gate only applies to benchmarks whose baseline ns/op is at least
// -ns-floor (default 10 µs/op): below that, the fixed iteration count
// measures microseconds of wall time and per-op cost can depend on b.N
// (heap-depth benchmarks), so the comparison against an adaptive-benchtime
// baseline would be noise gating noise. Benchmarks whose baseline records
// no ns/op are skipped, and a negative -ns-tolerance disables the
// wall-time gate entirely for machines whose noise floor exceeds any
// useful budget.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// baseline mirrors the fields of BENCH_harness.json this command reads.
type baseline struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// measure is one benchmark's guarded numbers, from the baseline file or a
// fresh run.
type measure struct {
	allocs  int64
	nsPerOp float64
}

// defaultSuites lists the guarded pkg=pattern pairs.
const defaultSuites = "./internal/sim=BenchmarkEngine,.=BenchmarkObsOff,.=BenchmarkProfOff,.=BenchmarkSimulatorThroughput"

func main() {
	baselinePath := flag.String("baseline", "BENCH_harness.json", "committed benchmark baseline")
	suites := flag.String("suites", defaultSuites, "comma-separated pkg=pattern benchmark suites to run and guard")
	benchtime := flag.String("benchtime", "1000x", "iterations per benchmark (fixed count: allocs/op is exact)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op growth over baseline")
	nsTolerance := flag.Float64("ns-tolerance", 0.15, "allowed fractional ns/op growth over baseline (negative disables the wall-time gate)")
	nsFloor := flag.Float64("ns-floor", 10_000, "minimum baseline ns/op for the wall-time gate to apply")
	flag.Parse()

	var problems []string
	for _, suite := range strings.Split(*suites, ",") {
		pkg, pattern, ok := strings.Cut(suite, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: bad -suites entry %q (want pkg=pattern)\n", suite)
			os.Exit(3)
		}
		base, err := loadBaseline(*baselinePath, pattern)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(3)
		}
		if len(base) == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: no %s* benchmarks in %s\n", pattern, *baselinePath)
			os.Exit(3)
		}

		cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
			"-benchtime", *benchtime, "-benchmem", pkg)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard: go test -bench:", err)
			os.Exit(3)
		}
		fresh, err := parseBench(out.String())
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(3)
		}

		problems = append(problems, compare(base, fresh, *tolerance, *nsTolerance, *nsFloor)...)
		names := make([]string, 0, len(base))
		for name := range base {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("benchguard: %-32s baseline %d allocs/op %.4g ns/op, fresh %d allocs/op %.4g ns/op\n",
				name, base[name].allocs, base[name].nsPerOp, fresh[name].allocs, fresh[name].nsPerOp)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", p)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

// loadBaseline reads allocs/op and ns/op for benchmarks matching the name
// prefix.
func loadBaseline(path, prefix string) (map[string]measure, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	out := map[string]measure{}
	for _, bm := range b.Benchmarks {
		if strings.HasPrefix(bm.Name, prefix) {
			out[bm.Name] = measure{allocs: bm.AllocsPerOp, nsPerOp: bm.NsPerOp}
		}
	}
	return out, nil
}

// parseBench extracts allocs/op and ns/op from go test -bench output,
// keyed by the bare benchmark name (GOMAXPROCS suffix stripped).
func parseBench(output string) (map[string]measure, error) {
	out := map[string]measure{}
	sc := bufio.NewScanner(strings.NewReader(output))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		m := out[name]
		seen := false
		for i := 1; i < len(fields)-1; i++ {
			switch fields[i+1] {
			case "allocs/op":
				n, err := strconv.ParseInt(fields[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
				}
				m.allocs = n
				seen = true
			case "ns/op":
				ns, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
				}
				m.nsPerOp = ns
			}
		}
		if seen {
			out[name] = m
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no allocs/op lines in benchmark output (is -benchmem set?)")
	}
	return out, nil
}

// compare returns one problem string per regression. A baseline of zero
// allocs/op admits zero fresh allocations regardless of tolerance; nonzero
// baselines may grow by at most the tolerance fraction (rounded up, so a
// baseline of 1 with 10% tolerance still only admits 1). ns/op is gated
// against its own wider budget when the baseline records at least nsFloor
// and nsTolerance is non-negative. Benchmarks present in the baseline but
// missing from the fresh run are failures too: a deleted benchmark
// silently un-guards its invariant.
func compare(base, fresh map[string]measure, tolerance, nsTolerance, nsFloor float64) []string {
	var problems []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: in baseline but not in fresh run", name))
			continue
		}
		limit := b.allocs + int64(float64(b.allocs)*tolerance)
		if f.allocs > limit {
			problems = append(problems, fmt.Sprintf("%s: %d allocs/op exceeds baseline %d (limit %d)",
				name, f.allocs, b.allocs, limit))
		}
		if nsTolerance >= 0 && b.nsPerOp >= nsFloor && b.nsPerOp > 0 {
			nsLimit := b.nsPerOp + b.nsPerOp*nsTolerance
			if f.nsPerOp > nsLimit {
				problems = append(problems, fmt.Sprintf("%s: %.4g ns/op exceeds baseline %.4g (limit %.4g)",
					name, f.nsPerOp, b.nsPerOp, nsLimit))
			}
		}
	}
	return problems
}
