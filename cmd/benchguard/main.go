// Command benchguard defends the simulator's allocation discipline in CI.
// It re-runs the guarded benchmark suites with -benchmem, parses allocs/op,
// and compares them against the committed baseline in BENCH_harness.json.
//
//	go run ./cmd/benchguard                  # default suites vs baseline
//	go run ./cmd/benchguard -tolerance 0.10  # explicit regression budget
//	go run ./cmd/benchguard -suites ./internal/sim=BenchmarkEngine
//
// Two suites are guarded by default: the event-core benchmarks (the
// allocation-free engine hot path) and the obs-off device benchmark, which
// pins the cost of the observability hooks when no observer is attached —
// a span stamp or flight-ring record that starts allocating on its disabled
// path shows up here as an allocs/op regression.
//
// A benchmark whose fresh allocs/op exceeds its baseline by more than the
// tolerance fails the run. Zero-allocation baselines get no budget at all:
// the first allocation on the event hot path is the regression, which is
// the property BenchmarkEngineEventThroughput exists to pin. ns/op is NOT
// guarded — wall time is too noisy on shared CI runners — allocation
// counts are exact and deterministic, which is what makes this check
// stable enough to gate merges on.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// baseline mirrors the fields of BENCH_harness.json this command reads.
type baseline struct {
	Benchmarks []struct {
		Name        string `json:"name"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// defaultSuites lists the guarded pkg=pattern pairs.
const defaultSuites = "./internal/sim=BenchmarkEngine,.=BenchmarkObsOff"

func main() {
	baselinePath := flag.String("baseline", "BENCH_harness.json", "committed benchmark baseline")
	suites := flag.String("suites", defaultSuites, "comma-separated pkg=pattern benchmark suites to run and guard")
	benchtime := flag.String("benchtime", "1000x", "iterations per benchmark (fixed count: allocs/op is exact)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op growth over baseline")
	flag.Parse()

	var problems []string
	for _, suite := range strings.Split(*suites, ",") {
		pkg, pattern, ok := strings.Cut(suite, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: bad -suites entry %q (want pkg=pattern)\n", suite)
			os.Exit(3)
		}
		base, err := loadBaseline(*baselinePath, pattern)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(3)
		}
		if len(base) == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: no %s* benchmarks in %s\n", pattern, *baselinePath)
			os.Exit(3)
		}

		cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
			"-benchtime", *benchtime, "-benchmem", pkg)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard: go test -bench:", err)
			os.Exit(3)
		}
		fresh, err := parseAllocs(out.String())
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(3)
		}

		problems = append(problems, compare(base, fresh, *tolerance)...)
		names := make([]string, 0, len(base))
		for name := range base {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("benchguard: %-32s baseline %d allocs/op, fresh %d allocs/op\n",
				name, base[name], fresh[name])
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", p)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

// loadBaseline reads allocs/op for benchmarks matching the name prefix.
func loadBaseline(path, prefix string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	out := map[string]int64{}
	for _, bm := range b.Benchmarks {
		if strings.HasPrefix(bm.Name, prefix) {
			out[bm.Name] = bm.AllocsPerOp
		}
	}
	return out, nil
}

// parseAllocs extracts "<name>-N ... M allocs/op" lines from go test -bench
// output, keyed by the bare benchmark name (GOMAXPROCS suffix stripped).
func parseAllocs(output string) (map[string]int64, error) {
	out := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(output))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		for i := 1; i < len(fields)-1; i++ {
			if fields[i+1] == "allocs/op" {
				n, err := strconv.ParseInt(fields[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
				}
				out[name] = n
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no allocs/op lines in benchmark output (is -benchmem set?)")
	}
	return out, nil
}

// compare returns one problem string per regression. A baseline of zero
// allocs/op admits zero fresh allocations regardless of tolerance; nonzero
// baselines may grow by at most the tolerance fraction (rounded up, so a
// baseline of 1 with 10% tolerance still only admits 1). Benchmarks present
// in the baseline but missing from the fresh run are failures too: a
// deleted benchmark silently un-guards its invariant.
func compare(base, fresh map[string]int64, tolerance float64) []string {
	var problems []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		baseAllocs := base[name]
		freshAllocs, ok := fresh[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: in baseline but not in fresh run", name))
			continue
		}
		limit := baseAllocs + int64(float64(baseAllocs)*tolerance)
		if freshAllocs > limit {
			problems = append(problems, fmt.Sprintf("%s: %d allocs/op exceeds baseline %d (limit %d)",
				name, freshAllocs, baseAllocs, limit))
		}
	}
	return problems
}
