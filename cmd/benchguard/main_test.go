package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: daredevil/internal/sim
cpu: whatever
BenchmarkEngineEventThroughput-8   	    1000	        11.78 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineFanout-8            	    1000	       526.5 ns/op	      23 B/op	       0 allocs/op
BenchmarkEngineTimerChurn          	    1000	        20.48 ns/op	       2 B/op	       1 allocs/op
PASS
ok  	daredevil/internal/sim	1.234s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]measure{
		"BenchmarkEngineEventThroughput": {allocs: 0, nsPerOp: 11.78},
		"BenchmarkEngineFanout":          {allocs: 0, nsPerOp: 526.5},
		"BenchmarkEngineTimerChurn":      {allocs: 1, nsPerOp: 20.48},
	}
	for name, m := range want {
		if got[name] != m {
			t.Errorf("%s = %+v, want %+v", name, got[name], m)
		}
	}
	if len(got) != len(want) {
		t.Errorf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	if _, err := parseBench("PASS\nok\n"); err == nil {
		t.Error("no allocs/op lines must be an error")
	}
}

func TestCompare(t *testing.T) {
	base := map[string]measure{"Zero": {}, "Ten": {allocs: 10}, "One": {allocs: 1}, "Gone": {allocs: 5}}
	fresh := map[string]measure{"Zero": {}, "Ten": {allocs: 11}, "One": {allocs: 1}}
	if problems := compare(base, fresh, 0.10, 0.15, 0); len(problems) != 1 ||
		!strings.Contains(problems[0], "Gone") {
		t.Errorf("within-tolerance run must only flag the missing benchmark, got %v", problems)
	}

	// The first allocation on a zero-alloc baseline is the regression.
	if problems := compare(map[string]measure{"Zero": {}}, map[string]measure{"Zero": {allocs: 1}}, 0.10, 0.15, 0); len(problems) != 1 {
		t.Errorf("zero baseline must admit zero fresh allocs, got %v", problems)
	}
	// 10% over a baseline of 10 is 11: allowed. 12 is not.
	if problems := compare(map[string]measure{"Ten": {allocs: 10}}, map[string]measure{"Ten": {allocs: 12}}, 0.10, 0.15, 0); len(problems) != 1 {
		t.Errorf("12 allocs over baseline 10 must fail, got %v", problems)
	}
	// A baseline of 1 with 10% tolerance truncates to limit 1.
	if problems := compare(map[string]measure{"One": {allocs: 1}}, map[string]measure{"One": {allocs: 2}}, 0.10, 0.15, 0); len(problems) != 1 {
		t.Errorf("2 allocs over baseline 1 must fail, got %v", problems)
	}
}

func TestCompareNs(t *testing.T) {
	base := map[string]measure{"B": {allocs: 5, nsPerOp: 100}}

	// +15% budget: 115 ns/op passes, 116 fails.
	if problems := compare(base, map[string]measure{"B": {allocs: 5, nsPerOp: 115}}, 0.10, 0.15, 0); len(problems) != 0 {
		t.Errorf("115 ns/op within +15%% of 100 must pass, got %v", problems)
	}
	problems := compare(base, map[string]measure{"B": {allocs: 5, nsPerOp: 116}}, 0.10, 0.15, 0)
	if len(problems) != 1 || !strings.Contains(problems[0], "ns/op") {
		t.Errorf("116 ns/op over +15%% of 100 must fail on the ns gate, got %v", problems)
	}

	// Negative tolerance disables the wall-time gate entirely.
	if problems := compare(base, map[string]measure{"B": {allocs: 5, nsPerOp: 1000}}, 0.10, -1, 0); len(problems) != 0 {
		t.Errorf("negative ns tolerance must disable the ns gate, got %v", problems)
	}

	// A baseline without ns/op recorded is skipped by the ns gate.
	noNs := map[string]measure{"B": {allocs: 5}}
	if problems := compare(noNs, map[string]measure{"B": {allocs: 5, nsPerOp: 1e9}}, 0.10, 0.15, 0); len(problems) != 0 {
		t.Errorf("missing baseline ns/op must skip the ns gate, got %v", problems)
	}

	// Both gates can fire on the same benchmark.
	problems = compare(base, map[string]measure{"B": {allocs: 50, nsPerOp: 500}}, 0.10, 0.15, 0)
	if len(problems) != 2 {
		t.Errorf("alloc and ns regressions must both report, got %v", problems)
	}

	// Baselines under the ns floor are not wall-time gated: a nanosecond-
	// scale benchmark measured for 1000 fixed iterations is pure noise.
	if problems := compare(base, map[string]measure{"B": {allocs: 5, nsPerOp: 1e6}}, 0.10, 0.15, 10_000); len(problems) != 0 {
		t.Errorf("baseline under the ns floor must skip the ns gate, got %v", problems)
	}
	// At or above the floor the gate applies.
	macro := map[string]measure{"B": {allocs: 5, nsPerOp: 20_000}}
	if problems := compare(macro, map[string]measure{"B": {allocs: 5, nsPerOp: 40_000}}, 0.10, 0.15, 10_000); len(problems) != 1 {
		t.Errorf("macro benchmark over budget must fail the ns gate, got %v", problems)
	}
}
