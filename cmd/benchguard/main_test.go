package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: daredevil/internal/sim
cpu: whatever
BenchmarkEngineEventThroughput-8   	    1000	        11.78 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineFanout-8            	    1000	       526.5 ns/op	      23 B/op	       0 allocs/op
BenchmarkEngineTimerChurn          	    1000	        20.48 ns/op	       2 B/op	       1 allocs/op
PASS
ok  	daredevil/internal/sim	1.234s
`

func TestParseAllocs(t *testing.T) {
	got, err := parseAllocs(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"BenchmarkEngineEventThroughput": 0,
		"BenchmarkEngineFanout":          0,
		"BenchmarkEngineTimerChurn":      1,
	}
	for name, allocs := range want {
		if got[name] != allocs {
			t.Errorf("%s = %d allocs/op, want %d", name, got[name], allocs)
		}
	}
	if len(got) != len(want) {
		t.Errorf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	if _, err := parseAllocs("PASS\nok\n"); err == nil {
		t.Error("no allocs/op lines must be an error")
	}
}

func TestCompare(t *testing.T) {
	base := map[string]int64{"Zero": 0, "Ten": 10, "One": 1, "Gone": 5}
	fresh := map[string]int64{"Zero": 0, "Ten": 11, "One": 1}
	if problems := compare(base, fresh, 0.10); len(problems) != 1 ||
		!strings.Contains(problems[0], "Gone") {
		t.Errorf("within-tolerance run must only flag the missing benchmark, got %v", problems)
	}

	// The first allocation on a zero-alloc baseline is the regression.
	if problems := compare(map[string]int64{"Zero": 0}, map[string]int64{"Zero": 1}, 0.10); len(problems) != 1 {
		t.Errorf("zero baseline must admit zero fresh allocs, got %v", problems)
	}
	// 10% over a baseline of 10 is 11: allowed. 12 is not.
	if problems := compare(map[string]int64{"Ten": 10}, map[string]int64{"Ten": 12}, 0.10); len(problems) != 1 {
		t.Errorf("12 allocs over baseline 10 must fail, got %v", problems)
	}
	// A baseline of 1 with 10% tolerance truncates to limit 1.
	if problems := compare(map[string]int64{"One": 1}, map[string]int64{"One": 2}, 0.10); len(problems) != 1 {
		t.Errorf("2 allocs over baseline 1 must fail, got %v", problems)
	}
}
