// Command ddsim runs a single custom multi-tenant scenario on a chosen
// storage stack and prints the aggregate results — a quick way to poke at
// the simulator without the full experiment harness.
//
// Example:
//
//	ddsim -stack daredevil -l 4 -t 16 -cores 4 -measure 500ms
//	ddsim -stack vanilla -l 4 -t 16 -namespaces 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"daredevil"
)

func main() {
	stack := flag.String("stack", "daredevil", "storage stack: vanilla | blk-switch | static-part | dare-base | dare-sched | daredevil")
	compare := flag.Bool("compare", false, "run the scenario on every stack concurrently and print a comparison (ignores -stack, -breakdown, -trace, -obs-window-us)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations with -compare")
	cores := flag.Int("cores", 4, "CPU cores")
	nL := flag.Int("l", 4, "L-tenants (4KB rand qd=1, real-time ionice)")
	nT := flag.Int("t", 8, "T-tenants (128KB qd=32, best-effort ionice)")
	namespaces := flag.Int("namespaces", 1, "NVMe namespaces (tenants spread round-robin)")
	workstation := flag.Bool("wsm", false, "use the WS-M testbed (8 cores, 128 NSQs / 24 NCQs)")
	warmup := flag.Duration("warmup", 100*time.Millisecond, "warmup window (virtual)")
	measure := flag.Duration("measure", 400*time.Millisecond, "measurement window (virtual)")
	breakdown := flag.Bool("breakdown", false, "report L-tenant path components (lock wait, completion delay, cross-core)")
	tracePath := flag.String("trace", "", "write request lifecycle spans as Chrome trace-event JSON to this file (open at ui.perfetto.dev)")
	traceLimit := flag.Int("trace-limit", 0, "cap the spans captured with -trace (0 = default budget)")
	obsWindowUs := flag.Int("obs-window-us", 0, "sample queue/CPU/FTL/recovery gauges every N virtual microseconds and print the CSV after the summary")
	profPath := flag.String("prof", "", "profile every request's virtual time by stack layer: print the breakdown table and host self-profile, write the mergeable profile JSON to this file")
	config := flag.String("config", "", "run a JSON scenario file instead of the flag-built mix")
	seed := flag.Uint64("seed", 0, "shift every tenant's random stream (0 = default streams)")
	errorRate := flag.Float64("error-rate", 0, "inject per-command media errors with this probability (controller retries up to 3x)")
	useFTL := flag.Bool("ftl", false, "run on an aged device with the page-mapped FTL (garbage collection, wear leveling)")
	opPct := flag.Float64("op", 7, "FTL over-provisioning percent (with -ftl)")
	trimEvery := flag.Int("trim", 0, "replace every Nth T-tenant request with an NVMe Deallocate (TRIM); 0 disables")
	faultProfile := flag.String("fault", "", "inject faults: brownout | lossy | wearout (window covers the 2nd quarter of -measure; arms host timeout/abort/reset recovery; wearout grows bad blocks only with -ftl)")
	faultSeed := flag.Uint64("fault-seed", 42, "seed for the dedicated fault RNG stream (with -fault)")
	flag.Parse()

	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "ddsim: -j must be at least 1 (got %d)\n", *jobs)
		os.Exit(2)
	}
	daredevil.SetParallelism(*jobs)

	if *config != "" {
		if err := runConfig(*config, *breakdown, *tracePath, *traceLimit, *obsWindowUs, *profPath); err != nil {
			fmt.Fprintln(os.Stderr, "ddsim:", err)
			os.Exit(1)
		}
		return
	}

	warm := daredevil.Duration(warmup.Nanoseconds())
	meas := daredevil.Duration(measure.Nanoseconds())

	var m daredevil.Machine
	if *workstation {
		m = daredevil.WorkstationMachine()
	} else {
		m = daredevil.ServerMachine(*cores)
	}
	if *errorRate > 0 {
		m.NVMe.MediaErrorRate = *errorRate
	}
	if *useFTL {
		fcfg := daredevil.DefaultFTLConfig()
		fcfg.OPPct = *opPct
		if err := fcfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "ddsim:", err)
			os.Exit(2)
		}
		m.FTL = &fcfg
	}
	if *faultProfile != "" {
		switch daredevil.FaultProfile(*faultProfile) {
		case daredevil.FaultBrownout, daredevil.FaultLossy, daredevil.FaultWearout:
		default:
			fmt.Fprintf(os.Stderr, "ddsim: unknown fault profile %q (want brownout, lossy, or wearout)\n", *faultProfile)
			os.Exit(2)
		}
		fs := daredevil.DefaultFaultSchedule(daredevil.FaultProfile(*faultProfile), *faultSeed, warm, meas)
		m.Fault = &fs
		// A quarter of the measurement phase keeps expiry well above the
		// device's legitimate tail under load — a too-short timeout turns
		// queueing into false aborts and reset storms, exactly as in Linux.
		m.NVMe.CmdTimeout = meas / 4
	}
	build := func(kind daredevil.StackKind) *daredevil.Simulation {
		sim := daredevil.NewSimulation(m, kind)
		sim.SetSeedShift(*seed)
		if *namespaces > 1 {
			sim.CreateNamespaces(*namespaces)
			for i := 0; i < *nL; i++ {
				sim.AddLTenantsNS(1, i%*namespaces)
			}
			for i := 0; i < *nT; i++ {
				sim.AddTTenantsNS(1, i%*namespaces)
			}
		} else if *trimEvery > 0 {
			sim.AddLTenants(*nL)
			for i := 0; i < *nT; i++ {
				cfg := daredevil.DefaultTTenantConfig("fio-T", i%m.Cores)
				cfg.TrimEvery = *trimEvery
				sim.AddJob(cfg)
			}
		} else {
			sim.AddLTenants(*nL)
			sim.AddTTenants(*nT)
		}
		return sim
	}

	if *compare {
		runCompare(build, warm, meas, *nL, *nT, m.Cores, *namespaces, *measure)
		return
	}

	kind, err := parseStack(*stack)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddsim:", err)
		os.Exit(2)
	}

	sim := build(kind)
	if *breakdown {
		sim.EnableBreakdown()
	}
	if *tracePath != "" {
		sim.EnableTrace(*traceLimit)
	}
	if *obsWindowUs > 0 {
		sim.EnableMetrics(daredevil.Duration(*obsWindowUs) * daredevil.Microsecond)
	}
	if *profPath != "" {
		sim.EnableProfile()
	}

	res := sim.Run(warm, meas)
	fmt.Printf("stack=%s cores=%d L=%d T=%d namespaces=%d (measured %v virtual)\n",
		sim.StackName(), m.Cores, *nL, *nT, *namespaces, *measure)
	fmt.Printf("  L-tenants: avg=%v p99=%v p99.9=%v max=%v (%.2f kIOPS, %d ops)\n",
		res.LTenantLatency.Mean, res.LTenantLatency.P99, res.LTenantLatency.P999,
		res.LTenantLatency.Max, res.LTenantKIOPS, res.LTenantLatency.Count)
	fmt.Printf("  T-tenants: avg=%v p99=%v (%.0f MB/s, %d ops)\n",
		res.TTenantLatency.Mean, res.TTenantLatency.P99,
		res.TThroughputMBps, res.TTenantLatency.Count)
	fmt.Printf("  CPU utilization: %.1f%%\n", 100*res.CPUUtilization)
	printFTL(res)
	printRecovery(res)
	if *breakdown {
		fmt.Printf("  L path components: lock-wait avg=%v p99=%v | completion-delay avg=%v p99=%v | cross-core %.0f%%\n",
			res.LSubmissionWait.Mean, res.LSubmissionWait.P99,
			res.LCompletionDelay.Mean, res.LCompletionDelay.P99,
			100*res.LCrossCoreFraction)
	}
	if err := writeObsOutputs(sim, *tracePath, *obsWindowUs > 0, *profPath); err != nil {
		fmt.Fprintln(os.Stderr, "ddsim:", err)
		os.Exit(1)
	}
}

// writeObsOutputs emits whatever observability surfaces the run armed: the
// Chrome trace JSON to tracePath, the sampled-gauge CSV to stdout, the
// layer-latency breakdown + self-profile (with the profile JSON to
// profPath), and — whenever host recovery escalated — the flight-recorder
// dumps.
func writeObsOutputs(sim *daredevil.Simulation, tracePath string, metrics bool, profPath string) error {
	if profPath != "" {
		fmt.Println()
		if err := sim.WriteProfile(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if err := sim.WriteSelfProfile(os.Stdout); err != nil {
			return err
		}
		f, err := os.Create(profPath)
		if err != nil {
			return err
		}
		if err := sim.Profile().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  profile: wrote %s (merge with other runs via prof.Merge)\n", profPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := sim.WriteTraceJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  trace: wrote %s (open at ui.perfetto.dev)\n", tracePath)
	}
	if metrics {
		fmt.Println()
		if err := sim.WriteMetricsCSV(os.Stdout); err != nil {
			return err
		}
	}
	if sim.FlightDumps() > 0 {
		fmt.Println()
		if err := sim.WriteFlight(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// allStacks is the -compare sweep order.
var allStacks = []daredevil.StackKind{
	daredevil.StackVanilla, daredevil.StackBlkSwitch, daredevil.StackStaticPart,
	daredevil.StackDareBase, daredevil.StackDareSched, daredevil.StackDaredevil,
}

// runCompare runs the flag-built scenario on every stack via the harness
// worker pool and prints one summary line per stack. Each stack gets its
// own freshly built simulation, so the concurrent runs cannot interact.
func runCompare(build func(daredevil.StackKind) *daredevil.Simulation,
	warm, meas daredevil.Duration, nL, nT, cores, namespaces int, measured time.Duration) {
	results := daredevil.CompareStacks(allStacks, func(kind daredevil.StackKind) daredevil.Result {
		return build(kind).Run(warm, meas)
	})
	fmt.Printf("comparison: cores=%d L=%d T=%d namespaces=%d -j %d (measured %v virtual)\n",
		cores, nL, nT, namespaces, daredevil.Parallelism(), measured)
	fmt.Printf("  %-12s %12s %12s %12s %10s %10s %8s\n",
		"stack", "L avg", "L p99", "L p99.9", "L kIOPS", "T MB/s", "CPU")
	for i, kind := range allStacks {
		r := results[i]
		fmt.Printf("  %-12s %12v %12v %12v %10.2f %10.0f %7.1f%%\n",
			string(kind), r.LTenantLatency.Mean, r.LTenantLatency.P99,
			r.LTenantLatency.P999, r.LTenantKIOPS, r.TThroughputMBps,
			100*r.CPUUtilization)
	}
}

// runConfig executes a JSON scenario file. Observability comes from either
// side: the scenario's trace/traceLimit/obsWindowUs fields arm the surfaces,
// and the -trace / -trace-limit / -obs-window-us flags add to or override
// them (the flag path wins for the trace output file; a scenario that set
// "trace": true without a -trace flag writes next to the scenario file).
func runConfig(path string, breakdown bool, tracePath string, traceLimit, obsWindowUs int, profPath string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sc, err := daredevil.ParseScenario(data)
	if err != nil {
		return err
	}
	sim, warm, measure, err := daredevil.BuildScenario(sc)
	if err != nil {
		return err
	}
	if breakdown {
		sim.EnableBreakdown()
	}
	if tracePath != "" {
		sim.EnableTrace(traceLimit)
	} else if sc.Trace {
		tracePath = strings.TrimSuffix(path, ".json") + ".trace.json"
	}
	if obsWindowUs > 0 {
		sim.EnableMetrics(daredevil.Duration(obsWindowUs) * daredevil.Microsecond)
	}
	if profPath != "" {
		sim.EnableProfile()
	} else if sc.Profile {
		profPath = strings.TrimSuffix(path, ".json") + ".profile.json"
	}
	metrics := obsWindowUs > 0 || sc.ObsWindowUs > 0
	res := sim.Run(warm, measure)
	fmt.Printf("scenario %s: stack=%s (measured %v virtual)\n", path, sim.StackName(), measure)
	fmt.Printf("  L-tenants: avg=%v p99=%v p99.9=%v (%.2f kIOPS, %d ops)\n",
		res.LTenantLatency.Mean, res.LTenantLatency.P99, res.LTenantLatency.P999,
		res.LTenantKIOPS, res.LTenantLatency.Count)
	fmt.Printf("  T-tenants: avg=%v p99=%v (%.0f MB/s, %d ops)\n",
		res.TTenantLatency.Mean, res.TTenantLatency.P99,
		res.TThroughputMBps, res.TTenantLatency.Count)
	fmt.Printf("  CPU utilization: %.1f%%\n", 100*res.CPUUtilization)
	printFTL(res)
	printRecovery(res)
	if breakdown {
		fmt.Printf("  L path components: lock-wait avg=%v | completion-delay avg=%v | cross-core %.0f%%\n",
			res.LSubmissionWait.Mean, res.LCompletionDelay.Mean, 100*res.LCrossCoreFraction)
	}
	return writeObsOutputs(sim, tracePath, metrics, profPath)
}

// printFTL reports device-internal GC activity when the run used -ftl (or
// a scenario with "ftl": true).
func printFTL(res daredevil.Result) {
	f := res.FTL
	if f == nil {
		return
	}
	fmt.Printf("  FTL: WA=%.2f GC runs=%d (moved %d pages, %d erases, %d foreground) trimmed=%d\n",
		f.WriteAmplification, f.GCRuns, f.GCPagesMoved, f.Erases, f.ForegroundGCs, f.TrimmedPages)
	if f.GCPauses.Count > 0 {
		fmt.Printf("  GC pauses: avg=%v p99=%v max=%v\n", f.GCPauses.Mean, f.GCPauses.P99, f.GCPauses.Max)
	}
}

// printRecovery reports error-path activity (media errors, the
// timeout/abort/reset ladder, host requeues, injected faults) when any
// occurred.
func printRecovery(res daredevil.Result) {
	r := res.Recovery
	if r == (daredevil.RecoveryCounters{}) {
		return
	}
	fmt.Printf("  recovery: media-errors=%d failed-cmds=%d timeouts=%d aborts=%d (races=%d escalated=%d) resets=%d cancelled=%d\n",
		r.MediaErrors, r.FailedCommands, r.Timeouts, r.Aborts, r.AbortRaces, r.AbortFails, r.Resets, r.CancelledCmds)
	fmt.Printf("  host: nsq-retries=%d requeued=%d terminal-failures=%d | injected: stalls=%d dropped-cqe=%d late-cqe=%d read-errs=%d prog-fails=%d\n",
		r.RetryAttempts, r.CancelRequeues, r.TerminalFailures,
		r.Faults.StallLosses, r.Faults.DroppedCQEs, r.Faults.LateCQEs,
		r.Faults.InjectedReadErrors, r.Faults.ProgramFailures)
}

func parseStack(s string) (daredevil.StackKind, error) {
	for _, k := range []daredevil.StackKind{
		daredevil.StackVanilla, daredevil.StackBlkSwitch, daredevil.StackStaticPart,
		daredevil.StackDareBase, daredevil.StackDareSched, daredevil.StackDaredevil,
	} {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("unknown stack %q", s)
}
