package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"daredevil"
)

func TestParseStackKnown(t *testing.T) {
	for _, name := range []string{
		"vanilla", "blk-switch", "static-part", "dare-base", "dare-sched", "daredevil",
	} {
		kind, err := parseStack(name)
		if err != nil {
			t.Fatalf("parseStack(%q): %v", name, err)
		}
		if string(kind) != name {
			t.Fatalf("parseStack(%q) = %q", name, kind)
		}
	}
}

func TestParseStackUnknown(t *testing.T) {
	if _, err := parseStack("bogus"); err == nil {
		t.Fatal("unknown stack must error")
	}
}

func TestParsedKindsBuild(t *testing.T) {
	kind, err := parseStack("daredevil")
	if err != nil {
		t.Fatal(err)
	}
	sim := daredevil.NewSimulation(daredevil.ServerMachine(2), kind)
	sim.AddLTenants(1)
	res := sim.Run(daredevil.Millisecond, 10*daredevil.Millisecond)
	if res.LTenantLatency.Count == 0 {
		t.Fatal("parsed kind did not produce a working simulation")
	}
}

func TestRunConfig(t *testing.T) {
	if err := runConfig("../../examples/scenarios/mixed.json", false, "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := runConfig("../../examples/scenarios/multins.json", true, "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := runConfig("/nonexistent.json", false, "", 0, 0, ""); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestRunConfigTraced runs the shipped traced scenario end to end: the
// scenario file arms tracing and metrics itself, and the trace JSON lands
// next to the scenario unless -trace overrides the path.
func TestRunConfigTraced(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile("../../examples/scenarios/traced.json")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "traced.json")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runConfig(path, false, "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(filepath.Join(dir, "traced.trace.json"))
	if err != nil {
		t.Fatalf("scenario-armed trace not written: %v", err)
	}
	if !json.Valid(out) {
		t.Fatal("trace output is not valid JSON")
	}
	if !strings.Contains(string(out), "traceEvents") {
		t.Fatal("trace output missing traceEvents envelope")
	}
}

// TestRunConfigProfiled runs the shipped profiled scenario: the scenario
// file arms the layer profiler itself and the mergeable profile JSON lands
// next to the scenario.
func TestRunConfigProfiled(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile("../../examples/scenarios/profiled.json")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "profiled.json")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runConfig(path, false, "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(filepath.Join(dir, "profiled.profile.json"))
	if err != nil {
		t.Fatalf("scenario-armed profile not written: %v", err)
	}
	if !json.Valid(out) {
		t.Fatal("profile output is not valid JSON")
	}
	for _, want := range []string{`"stack": "daredevil"`, `"layer": "queue_wait"`, `"layer": "gc"`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("profile output missing %q", want)
		}
	}
}
