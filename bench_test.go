package daredevil

// Benchmark harness: one testing.B benchmark per paper table/figure (run
// with `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out. Each iteration regenerates the experiment at
// a reduced scale; per-op time is therefore "virtual experiment per real
// second". Reported custom metrics carry the headline numbers so the bench
// output doubles as a compact results table.

import (
	"testing"

	"daredevil/internal/core"
	"daredevil/internal/harness"
	"daredevil/internal/sim"
	"daredevil/internal/stackbase"
	"daredevil/internal/workload"
)

// benchScale keeps benchmark iterations cheap while preserving queueing
// behavior.
var benchScale = harness.Scale{Warmup: 20 * sim.Millisecond, Measure: 80 * sim.Millisecond}

func BenchmarkTable1Factors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.RunTable1()
		if len(res.Rows) != 4 {
			b.Fatal("table1 incomplete")
		}
	}
}

func BenchmarkFig2Motivation(b *testing.B) {
	var last harness.Fig2Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig2(benchScale)
	}
	// Report the 16-T-tenant row: at bench scale the 32-T cell can be fully
	// blocked (zero L completions), which is the phenomenon itself but a
	// useless metric.
	r := last.Rows[len(last.Rows)-2]
	b.ReportMetric(r.WithAvg.Milliseconds(), "with-avg-ms")
	b.ReportMetric(r.WithoutAvg.Milliseconds(), "without-avg-ms")
}

func BenchmarkFig6SVMPressure(b *testing.B) {
	var last harness.Fig6Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig6(benchScale)
	}
	reportPressure(b, last)
}

func BenchmarkFig7WSMPressure(b *testing.B) {
	var last harness.Fig6Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig7(benchScale)
	}
	reportPressure(b, last)
}

func reportPressure(b *testing.B, r harness.Fig6Result) {
	b.Helper()
	if dd, ok := r.Cell(harness.DareFull, 16); ok {
		b.ReportMetric(dd.Avg.Milliseconds(), "dd-avg-ms@16T")
	}
	// The 16-T cell is used because vanilla's 32-T cell can be fully
	// blocked (zero completions) at bench scale.
	if van, ok := r.Cell(harness.Vanilla, 16); ok {
		b.ReportMetric(van.Avg.Milliseconds(), "vanilla-avg-ms@16T")
	}
}

func BenchmarkFig8TimeSeries(b *testing.B) {
	var last harness.Fig8Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig8(benchScale)
	}
	b.ReportMetric(last.Fluctuation(harness.BlkSwitch), "blkswitch-cv")
	b.ReportMetric(last.Fluctuation(harness.DareFull), "daredevil-cv")
}

func BenchmarkFig9CoreSensitivity(b *testing.B) {
	var last harness.Fig9Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig9(benchScale)
	}
	if c, ok := last.Cell(harness.DareFull, 8, 32); ok {
		b.ReportMetric(c.Tail.Milliseconds(), "dd-tail-ms@8c32T")
	}
}

func BenchmarkFig10MultiNamespace(b *testing.B) {
	var last harness.Fig10Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig10(benchScale)
	}
	if c, ok := last.Cell(harness.DareFull, 12); ok {
		b.ReportMetric(c.Avg.Milliseconds(), "dd-avg-ms@12ns")
	}
}

func BenchmarkFig11Ablation(b *testing.B) {
	var last harness.Fig11Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig11(benchScale)
	}
	if c, ok := last.SingleCell(harness.DareBase, 32); ok {
		b.ReportMetric(c.Tail.Milliseconds(), "base-tail-ms@32T")
	}
	if c, ok := last.SingleCell(harness.DareFull, 32); ok {
		b.ReportMetric(c.Tail.Milliseconds(), "full-tail-ms@32T")
	}
}

func BenchmarkFig12Applications(b *testing.B) {
	var last harness.Fig12Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig12(benchScale)
	}
	if c, ok := last.Cell("YCSB-A", harness.DareFull); ok {
		b.ReportMetric(c.Metrics[workload.OpUpdate].Milliseconds(), "dd-ycsbA-update-p999-ms")
	}
}

func BenchmarkFig13CrossCoreOverheads(b *testing.B) {
	var last harness.Fig13Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig13(benchScale)
	}
	if c, ok := last.Cell(harness.DareFull, "L", 12, 12); ok {
		b.ReportMetric(c.CompDelay.Microseconds(), "dd-comp-delay-us")
	}
}

func BenchmarkFig14UpdateStorm(b *testing.B) {
	var last harness.Fig14Result
	for i := 0; i < b.N; i++ {
		last = harness.RunFig14(benchScale)
	}
	r := last.Rows[len(last.Rows)-1]
	b.ReportMetric(r.LIOPSNorm, "l-iops-norm@10us")
	b.ReportMetric(r.CPUUtil, "cpu-util@10us")
}

// --- Ablation benches (DESIGN.md "design choices") ---

// BenchmarkAblationAlpha sweeps the exponential-smoothing decay ratio.
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range []float64{0.6, 0.8, 0.95} {
		b.Run(alphaName(alpha), func(b *testing.B) {
			var avg sim.Duration
			for i := 0; i < b.N; i++ {
				avg = runDareVariant(func(cfg *core.Config) { cfg.Alpha = alpha })
			}
			b.ReportMetric(avg.Milliseconds(), "l-avg-ms")
		})
	}
}

func alphaName(a float64) string {
	switch a {
	case 0.6:
		return "alpha=0.6"
	case 0.8:
		return "alpha=0.8"
	default:
		return "alpha=0.95"
	}
}

// BenchmarkAblationMRU compares the MRU update batching against per-query
// heap refreshes (MRU=1 forces a resort on every query).
func BenchmarkAblationMRU(b *testing.B) {
	for _, mru := range []int{1, 64, 1024} {
		mru := mru
		b.Run(mruName(mru), func(b *testing.B) {
			var avg sim.Duration
			for i := 0; i < b.N; i++ {
				avg = runDareVariant(func(cfg *core.Config) { cfg.MRU = mru })
			}
			b.ReportMetric(avg.Milliseconds(), "l-avg-ms")
		})
	}
}

func mruName(m int) string {
	switch m {
	case 1:
		return "mru=1"
	case 64:
		return "mru=64"
	default:
		return "mru=depth"
	}
}

// runDareVariant measures L-tenant average latency under 4L+16T with a
// tweaked Daredevil configuration.
func runDareVariant(tweak func(*core.Config)) sim.Duration {
	env := harness.NewEnv(harness.SVM(4), harness.Vanilla) // device/pool only
	cfg := core.DefaultConfig()
	tweak(&cfg)
	stack := core.New(stackbase.Env{Eng: env.Eng, Pool: env.Pool, Dev: env.Dev}, cfg)
	env.Stack = stack
	mix := harness.NewMix(env)
	mix.AddL(4, 0)
	mix.AddT(16, 0)
	// Outlier traffic exercises the request-specific scheduling context,
	// where alpha and the MRU policy actually matter.
	for _, j := range mix.TJobs {
		j.Cfg.OutlierEvery = 16
	}
	mix.StartAll()
	workload.StartIoniceUpdater(env.Eng, env.Stack, mix.Tenants(),
		sim.Millisecond, sim.Time(benchScale.Warmup+benchScale.Measure))
	env.Eng.RunUntil(sim.Time(benchScale.Warmup))
	mix.ResetStats()
	env.Eng.RunUntil(sim.Time(benchScale.Warmup + benchScale.Measure))
	return mix.Collect(benchScale.Measure).L.Mean
}

// BenchmarkAblationStaticSkew contrasts static partitioning against
// Daredevil's flexible routing under skewed per-core load: every tenant
// pinned to core 0, so static bindings funnel all I/O into one NQ pair.
func BenchmarkAblationStaticSkew(b *testing.B) {
	run := func(kind harness.StackKind) sim.Duration {
		env := harness.NewEnv(harness.SVM(4), kind)
		mix := harness.NewMix(env)
		mix.AddL(2, 0)
		mix.AddT(8, 0)
		for _, j := range mix.AllJobs() {
			j.Tenant.Core = 0
			j.Cfg.Core = 0
		}
		mix.StartAll()
		env.Eng.RunUntil(sim.Time(benchScale.Warmup))
		mix.ResetStats()
		env.Eng.RunUntil(sim.Time(benchScale.Warmup + benchScale.Measure))
		return mix.Collect(benchScale.Measure).L.Mean
	}
	for _, kind := range []harness.StackKind{harness.StaticPart, harness.DareFull} {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			var avg sim.Duration
			for i := 0; i < b.N; i++ {
				avg = run(kind)
			}
			b.ReportMetric(avg.Milliseconds(), "l-avg-ms")
		})
	}
}

// BenchmarkAblationNSQRatio contrasts 1:1 NSQ:NCQ binding (SV-M) against a
// >5:1 ratio (WS-M shape) at identical core counts.
func BenchmarkAblationNSQRatio(b *testing.B) {
	run := func(m harness.Machine) sim.Duration {
		r := harness.RunMixOnce(m, harness.DareFull, 4, 16, benchScale)
		return r.L.Mean
	}
	oneToOne := harness.SVM(8)
	wide := harness.WSM()
	b.Run("nsq:ncq=1:1", func(b *testing.B) {
		var avg sim.Duration
		for i := 0; i < b.N; i++ {
			avg = run(oneToOne)
		}
		b.ReportMetric(avg.Milliseconds(), "l-avg-ms")
	})
	b.Run("nsq:ncq=5:1", func(b *testing.B) {
		var avg sim.Duration
		for i := 0; i < b.N; i++ {
			avg = run(wide)
		}
		b.ReportMetric(avg.Milliseconds(), "l-avg-ms")
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed: events per
// second of the full machine under a heavy mixed workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := harness.NewEnv(harness.SVM(4), harness.DareFull)
		mix := harness.NewMix(env)
		mix.AddL(4, 0)
		mix.AddT(16, 0)
		mix.StartAll()
		env.Eng.RunUntil(sim.Time(100 * sim.Millisecond))
		b.ReportMetric(float64(env.Eng.Executed), "events")
	}
}

// BenchmarkObsOffDeviceHotPath pins the cost of the observability hooks
// when observability is off — the common case for every experiment cell.
// EnableObs is never called, so every span stamp, flight-ring record, and
// tracer call must stay on its nil-check path; benchguard guards this
// benchmark's allocs/op so a hook that starts allocating (or forces an
// interface boxing) on the disabled path fails CI.
func BenchmarkObsOffDeviceHotPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := harness.NewEnv(harness.SVM(2), harness.DareFull)
		mix := harness.NewMix(env)
		mix.AddL(2, 0)
		mix.AddT(2, 0)
		mix.StartAll()
		env.Eng.RunUntil(sim.Time(20 * sim.Millisecond))
	}
}

// BenchmarkProfOffDeviceHotPath pins the cost of the profiler seam when
// profiling is off: the observer is attached (so span plumbing, the
// GC-stall sampling sites, and Span.End's sink dispatch are all reachable)
// but no tracer or profile sink is armed, so StartSpan returns nil and
// every stamp must stay on its nil-check path. The environment is built
// once and the engine advanced per iteration, so the steady state is
// allocation-free — benchguard gates this at exactly 0 allocs/op.
func BenchmarkProfOffDeviceHotPath(b *testing.B) {
	env := harness.NewEnv(harness.SVM(2), harness.DareFull)
	env.EnableObs(0, 0)
	mix := harness.NewMix(env)
	mix.AddL(2, 0)
	mix.AddT(2, 0)
	mix.StartAll()
	end := sim.Time(20 * sim.Millisecond)
	env.Eng.RunUntil(end)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end += sim.Time(sim.Millisecond)
		env.Eng.RunUntil(end)
	}
}

// --- Extension benches ---

// BenchmarkExtensionSchedulers regenerates the I/O-scheduler comparison.
func BenchmarkExtensionSchedulers(b *testing.B) {
	var last harness.ExtSchedResult
	for i := 0; i < b.N; i++ {
		last = harness.RunExtSchedulers(benchScale)
	}
	if c, ok := last.Cell(harness.Kyber, 32); ok {
		b.ReportMetric(c.Avg.Milliseconds(), "kyber-avg-ms@32T")
	}
}

// BenchmarkExtensionWRR regenerates the arbitration ablation.
func BenchmarkExtensionWRR(b *testing.B) {
	var last harness.ExtWRRResult
	for i := 0; i < b.N; i++ {
		last = harness.RunExtWRR(benchScale)
	}
	for _, row := range last.Rows {
		if row.Arbitration == "weighted-rr" && row.TCount == 32 {
			b.ReportMetric(row.Avg.Milliseconds(), "wrr-avg-ms@32T")
		}
	}
}

// BenchmarkExtensionPolling regenerates the completion-mode comparison.
func BenchmarkExtensionPolling(b *testing.B) {
	var last harness.ExtPollResult
	for i := 0; i < b.N; i++ {
		last = harness.RunExtPolling(benchScale)
	}
	if len(last.Rows) == 2 {
		b.ReportMetric(last.Rows[1].Avg.Microseconds(), "polled-avg-us")
	}
}

// BenchmarkExtensionVirtio regenerates the §8.1 VM comparison.
func BenchmarkExtensionVirtio(b *testing.B) {
	var last harness.ExtVirtioResult
	for i := 0; i < b.N; i++ {
		last = harness.RunExtVirtio(benchScale)
	}
	if row, ok := last.Row("guest-decoupled", harness.DareFull); ok {
		b.ReportMetric(row.Avg.Milliseconds(), "decoupled-guest-avg-ms")
	}
}
