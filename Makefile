# Daredevil reproduction — common tasks.

GO ?= go

.PHONY: all build test test-short race bench bench-profiles bench-all benchguard figures svg json obs prof examples serve serve-smoke lint lint-cold vet fmt cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The simulator is single-goroutine by design; -race proves it (and the
# tests around it) stay that way.
race:
	$(GO) test -race -short ./...

# Capture the performance baseline: event-core ns/op + allocs/op, the
# whole-simulator benchmark, and ddbench wall-clock serial vs parallel.
# The old baseline is kept as BENCH_harness.prev.json, and the cpu/mem
# profile pair for the whole-simulator benchmark lands in out/profiles so
# a regression found by benchguard arrives with the evidence attached.
bench: bench-profiles
	$(GO) run ./cmd/benchjson -out BENCH_harness.json

# The profile pair behind the headline number: where BenchmarkSimulator-
# Throughput spends its cycles and what it still allocates. CI archives
# these as a workflow artifact on every run.
bench-profiles:
	mkdir -p out/profiles
	$(GO) test -run '^$$' -bench BenchmarkSimulatorThroughput -benchtime 300x \
		-cpuprofile out/profiles/throughput.cpu.pprof \
		-memprofile out/profiles/throughput.mem.pprof \
		-o out/profiles/throughput.test .

# The full benchmark sweep across every package.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Fail if the guarded benchmarks (event core, obs-off device hot path,
# whole-simulator throughput) allocate more per op than the committed
# baseline in BENCH_harness.json admits (zero-alloc baselines admit zero),
# or exceed their baseline ns/op by more than the wall-time budget.
benchguard:
	$(GO) run ./cmd/benchguard

# Regenerate every paper table/figure (plus extensions) at default scale.
figures:
	$(GO) run ./cmd/ddbench all

svg:
	$(GO) run ./cmd/ddbench -svg out/figures all

json:
	$(GO) run ./cmd/ddbench -json out/results all

# Instrumented demo cell: Perfetto trace, gauge CSV + SVG sparklines, and
# the flight-recorder dump of its recovery escalations.
obs:
	$(GO) run ./cmd/ddbench -obs out/obs

# Profiled comparison grid: the merged virtual-time layer-latency profile
# (breakdown table, flame-graph folded stacks, stacked-bar SVG, mergeable
# JSON) plus per-cell tables — byte-identical at any -j width. CI archives
# out/prof as a workflow artifact.
prof:
	$(GO) run ./cmd/ddbench -quick -prof out/prof

# Run the capacity-planning daemon on the default local port.
serve:
	$(GO) run ./cmd/ddserve

# End-to-end daemon smoke test: sweep, cache hit, what-if, SIGTERM drain.
serve-smoke:
	./scripts/ddserve_smoke.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/multinamespace
	$(GO) run ./examples/ycsb
	$(GO) run ./examples/outliers
	$(GO) run ./examples/virtio
	$(GO) run ./examples/webapp
	$(GO) run ./examples/aged

# The determinism and hot-path lint suite (see internal/analysis): must be
# clean before merge. go vet and gofmt ride along so `make lint` is the one
# local command matching CI's lint job. ddvet keeps a per-package result
# cache in out/ddvetcache, so a repeat run on an unchanged tree is mostly
# one go list; `make lint-cold` bypasses it.
lint:
	$(GO) run ./cmd/ddvet -timings ./...
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

lint-cold:
	$(GO) run ./cmd/ddvet -nocache -timings ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

cover:
	$(GO) test -cover ./...

clean:
	rm -rf out
