# Daredevil reproduction — common tasks.

GO ?= go

.PHONY: all build test test-short bench figures svg json examples vet fmt cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure (plus extensions) at default scale.
figures:
	$(GO) run ./cmd/ddbench all

svg:
	$(GO) run ./cmd/ddbench -svg out/figures all

json:
	$(GO) run ./cmd/ddbench -json out/results all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/multinamespace
	$(GO) run ./examples/ycsb
	$(GO) run ./examples/outliers
	$(GO) run ./examples/virtio
	$(GO) run ./examples/webapp

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

cover:
	$(GO) test -cover ./...

clean:
	rm -rf out
