package daredevil

import (
	"testing"

	"daredevil/internal/flash"
	"daredevil/internal/ftl"
	"daredevil/internal/sim"
)

// FuzzParseScenario ensures scenario parsing never panics and that every
// accepted scenario builds a runnable simulation.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(`{"jobs":[{"name":"x","class":"L","count":1}]}`))
	f.Add([]byte(`{"machine":"wsm","stack":"vanilla","jobs":[{"name":"t","class":"T","count":2}]}`))
	f.Add([]byte(`{"namespaces":3,"jobs":[{"name":"a","class":"L","count":1,"namespace":2}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"jobs":[{"name":"x","class":"L","count":1,"arrivalUs":100,"bs":8192}]}`))
	f.Add([]byte(`{"ftl":true,"opPct":15,"scramblePct":10,"jobs":[{"name":"t","class":"T","count":1,"trimEvery":4}]}`))
	f.Add([]byte(`{"opPct":15,"jobs":[{"name":"t","class":"T","count":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted scenarios must build — unless they carry sweep axes,
		// which only ddserve expands into cells.
		if _, _, _, err := BuildScenario(sc); err != nil && len(sc.Sweep) == 0 {
			t.Fatalf("accepted scenario failed to build: %v\n%s", err, data)
		}
	})
}

// FuzzFTLMapping drives a small FTL-backed device with a fuzz-chosen
// interleaving of writes, TRIMs, and reads, letting the background GC chains
// run between operations, and asserts the mapping-table invariants (L2P/P2L
// consistency, per-block valid counts, free-list integrity) after every step.
// The input tape is consumed in 3-byte records: opcode, then a 16-bit
// logical-page selector; the opcode's high bits size multi-page ranges so
// TRIMs and writes cross block boundaries.
func FuzzFTLMapping(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 1, 2, 0, 2})
	f.Add([]byte{0, 0x12, 0x34, 0x41, 0x12, 0x34, 0x80, 0x12, 0x34})
	f.Add([]byte{0xff, 0xff, 0xff, 0x00, 0x00, 0xff, 0x41, 0x00, 0xff})
	seq := make([]byte, 0, 192)
	for i := 0; i < 64; i++ {
		seq = append(seq, byte(i%3)<<6, byte(i>>8), byte(i))
	}
	f.Add(seq)
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 512
		if len(data) > 3*maxOps {
			data = data[:3*maxOps]
		}
		eng := sim.New()
		fcfg := ftl.Config{
			PagesPerBlock:   16,
			BlocksPerDie:    16,
			OPPct:           30,
			GCBatchPages:    4,
			PreconditionPct: 100,
			ScramblePct:     30,
			Seed:            7,
		}
		d := ftl.New(eng, flash.New(flash.Config{
			Channels:        4,
			ChipsPerChannel: 2,
			PageSize:        4096,
			ReadLatency:     70 * sim.Microsecond,
			ProgramLatency:  420 * sim.Microsecond,
			XferLatency:     3 * sim.Microsecond,
			EraseLatency:    2 * sim.Millisecond,
		}), fcfg)
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("invariants broken after preconditioning: %v", err)
		}
		pageSize := int64(4096)
		for len(data) >= 3 {
			op, hi, lo := data[0], data[1], data[2]
			data = data[3:]
			lp := (int64(hi)<<8 | int64(lo)) % d.LogicalPages()
			pages := int64(op>>4)%4 + 1 // 1..4 pages per operation
			off, size := lp*pageSize, pages*pageSize
			switch op % 3 {
			case 0:
				d.SubmitIO(eng.Now(), off, size, flash.Program)
			case 1:
				d.Trim(off, size)
			case 2:
				d.SubmitIO(eng.Now(), off, size, flash.Read)
			}
			eng.Run() // drain GC chains and deferred trim wake-ups
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("invariants broken after op %d (lp=%d pages=%d): %v",
					op%3, lp, pages, err)
			}
		}
		// The device must stay conservative: mapped pages never exceed the
		// logical space, free blocks never exceed physical blocks.
		if d.ValidPages() > d.LogicalPages() {
			t.Fatalf("%d valid pages exceed logical capacity %d",
				d.ValidPages(), d.LogicalPages())
		}
	})
}
