package daredevil

import (
	"testing"
)

// FuzzParseScenario ensures scenario parsing never panics and that every
// accepted scenario builds a runnable simulation.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(`{"jobs":[{"name":"x","class":"L","count":1}]}`))
	f.Add([]byte(`{"machine":"wsm","stack":"vanilla","jobs":[{"name":"t","class":"T","count":2}]}`))
	f.Add([]byte(`{"namespaces":3,"jobs":[{"name":"a","class":"L","count":1,"namespace":2}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"jobs":[{"name":"x","class":"L","count":1,"arrivalUs":100,"bs":8192}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted scenarios must build.
		if _, _, _, err := sc.Build(); err != nil {
			t.Fatalf("accepted scenario failed to build: %v\n%s", err, data)
		}
	})
}
